//! Sharded row-major storage: a matrix split into bounded row blocks.
//!
//! The metric data plane grows one profiled scenario at a time. Backing it
//! with a single dense [`Matrix`] means every capacity growth copies the
//! entire buffer and every mid-matrix insert memmoves everything below the
//! insertion point — at 10⁵–10⁶ rows that is a giant allocation plus O(n)
//! work per record. A [`ShardedMatrix`] keeps the same logical row-major
//! contents in shards of at most `shard_rows` rows each, so:
//!
//! - growth allocates one shard at a time (peak transient allocation is
//!   bounded by the shard size, not the database size);
//! - inserting a row is shard-local (splice within one shard, split the
//!   shard when it overflows — never a whole-matrix memmove);
//! - row views are served shard-aware with a binary search over shard
//!   start offsets.
//!
//! **Determinism contract:** the shard layout is a storage detail. Row
//! contents and row order are identical to the unsharded representation
//! for every `shard_rows` (held by proptests in `flare-metrics`), and
//! [`ShardedMatrix::coalesced`] produces the exact dense matrix an
//! unsharded store would hold — same bytes, same row order. Equality
//! ([`PartialEq`]) compares logical content only, never layout: two stores
//! with different shard boundaries (e.g. one grown incrementally with
//! splits, one rebuilt in sorted order from the wire format) compare equal
//! when their rows do.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Uniform read access to row shards, whether they are all resident
/// ([`ShardedMatrix`]) or faulted in on demand from a spill directory
/// ([`ShardStore`]).
///
/// Streaming algorithms (`Pca::fit_sharded`, the sharded correlation
/// pass, …) are generic over this trait, so the spill knob changes only
/// *where* a shard lives, never the order in which its rows are folded —
/// which is what makes spill-on/spill-off byte-identity structural
/// rather than accidental.
pub trait ShardAccess {
    /// Total logical rows across all shards.
    fn nrows(&self) -> usize;
    /// Number of columns.
    fn ncols(&self) -> usize;
    /// Number of shards, in row order.
    fn shard_count(&self) -> usize;
    /// The layout bound: no shard holds more than this many rows.
    fn shard_rows(&self) -> usize;
    /// Rows held by shard `s` (0 for an out-of-bounds index). Lets random
    /// row access map a logical index to a `(shard, local)` pair without
    /// faulting every shard in first.
    fn shard_len(&self, s: usize) -> usize;
    /// Logical index of shard `s`'s first row (`nrows()` past the end).
    /// Default: sum of preceding shard lengths.
    fn shard_start(&self, s: usize) -> usize {
        (0..s.min(self.shard_count()))
            .map(|p| self.shard_len(p))
            .sum()
    }
    /// Runs `f` against shard `s`, faulting it in first if it is spilled.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `s` is out of bounds
    /// and [`LinalgError::Io`] if a spilled shard cannot be read back.
    fn with_shard<R>(&self, s: usize, f: impl FnOnce(&Matrix) -> R) -> Result<R>;
}

/// A row-major matrix stored as a sequence of bounded row blocks.
///
/// See the [module docs](self) for the layout and determinism contract.
///
/// # Examples
///
/// ```
/// use flare_linalg::ShardedMatrix;
///
/// let mut m = ShardedMatrix::new(2, 2); // 2 columns, 2 rows per shard
/// for i in 0..5 {
///     m.push_row(&[i as f64, -(i as f64)]).unwrap();
/// }
/// assert_eq!(m.nrows(), 5);
/// assert_eq!(m.shard_count(), 3); // 2 + 2 + 1 rows
/// assert_eq!(m.row(3), &[3.0, -3.0]);
/// assert_eq!(m.coalesced().row(3), &[3.0, -3.0]);
/// ```
pub struct ShardedMatrix {
    cols: usize,
    shard_rows: usize,
    shards: Vec<Matrix>,
    /// `starts[s]` = logical index of shard `s`'s first row.
    starts: Vec<usize>,
    nrows: usize,
    /// Rows promised by [`ShardedMatrix::reserve_rows`] that have not yet
    /// been pushed; drained as new shards pre-size their buffers. A pure
    /// capacity hint — never part of content, equality, or Debug output.
    pending_reserve: usize,
    /// Lazily coalesced dense view for multi-shard stores; invalidated on
    /// every mutation so [`ShardedMatrix::coalesced`] is pointer-stable
    /// between mutations.
    coalesced: OnceLock<Matrix>,
}

impl ShardedMatrix {
    /// An empty store with `cols` columns and at most `shard_rows` rows
    /// per shard (`shard_rows` is clamped to at least 1).
    pub fn new(cols: usize, shard_rows: usize) -> Self {
        ShardedMatrix {
            cols,
            shard_rows: shard_rows.max(1),
            shards: Vec::new(),
            starts: Vec::new(),
            nrows: 0,
            pending_reserve: 0,
            coalesced: OnceLock::new(),
        }
    }

    /// Splits an existing dense matrix into shards of at most
    /// `shard_rows` rows, preserving row order and bytes.
    pub fn from_matrix(m: &Matrix, shard_rows: usize) -> Self {
        let mut out = ShardedMatrix::new(m.ncols(), shard_rows);
        let mut start = 0;
        while start < m.nrows() {
            let end = (start + out.shard_rows).min(m.nrows());
            let shard = Matrix::from_vec(end - start, m.ncols(), m.row_block(start..end).to_vec())
                .expect("block dimensions are consistent by construction");
            out.starts.push(start);
            out.shards.push(shard);
            start = end;
        }
        out.nrows = m.nrows();
        out
    }

    /// Number of logical rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `true` when the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// The configured shard capacity (maximum rows per shard).
    pub fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    /// Number of shards currently allocated.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in row order. Every shard holds at most
    /// [`ShardedMatrix::shard_rows`] rows — the bounded-memory invariant
    /// scale benches assert.
    pub fn shards(&self) -> &[Matrix] {
        &self.shards
    }

    /// `(shard index, row index within that shard)` for logical row `i`.
    fn locate(&self, i: usize) -> (usize, usize) {
        assert!(
            i < self.nrows,
            "row index {i} out of bounds ({})",
            self.nrows
        );
        // partition_point returns the first shard starting past `i`.
        let s = self.starts.partition_point(|&start| start <= i) - 1;
        (s, i - self.starts[s])
    }

    /// Immutable view of logical row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        let (s, local) = self.locate(i);
        self.shards[s].row(local)
    }

    /// Mutable view of logical row `i`. Invalidates the coalesced cache.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows()`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        self.coalesced.take();
        let (s, local) = self.locate(i);
        self.shards[s].row_mut(local)
    }

    /// Iterator over logical rows, in order, across shard boundaries.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.shards.iter().flat_map(Matrix::rows_iter)
    }

    /// Appends a row: fills the last shard or opens a new one — never a
    /// whole-store copy.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row.len() != ncols()`.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "push_row: row of length {} into a store with {} columns",
                row.len(),
                self.cols
            )));
        }
        self.coalesced.take();
        match self.shards.last_mut() {
            Some(last) if last.nrows() < self.shard_rows => last.push_row(row)?,
            _ => {
                let mut shard = Matrix::zeros(0, self.cols);
                // One capacity decision per shard: size the fresh shard for
                // whatever remains of the announced window (but never past
                // the shard bound) instead of growing per push.
                let want = self.shard_rows.min(self.pending_reserve.max(1));
                shard.reserve_rows(want);
                self.pending_reserve = self.pending_reserve.saturating_sub(want);
                shard.push_row(row)?;
                self.starts.push(self.nrows);
                self.shards.push(shard);
            }
        }
        self.nrows += 1;
        Ok(())
    }

    /// Announces that `additional` rows are about to be appended via
    /// [`ShardedMatrix::push_row`], so the chunked ingest path makes one
    /// capacity decision per window instead of one per record: the tail
    /// shard reserves whatever fits under its row bound immediately, and
    /// the remainder pre-sizes each new shard as it opens.
    ///
    /// A pure capacity hint: contents, equality, and layout are unchanged.
    pub fn reserve_rows(&mut self, additional: usize) {
        let mut remaining = additional;
        if let Some(last) = self.shards.last_mut() {
            let room = self.shard_rows.saturating_sub(last.nrows());
            let fill = room.min(remaining);
            if fill > 0 {
                last.reserve_rows(fill);
                remaining -= fill;
            }
        }
        self.pending_reserve = remaining;
    }

    /// Inserts a row before logical index `at` (`at == nrows()` appends).
    /// The splice is shard-local; a shard that overflows its capacity is
    /// split in half instead of spilling into its neighbours, so the cost
    /// is O(`shard_rows`) regardless of the store size.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `row.len() != ncols()`
    /// and [`LinalgError::InvalidParameter`] if `at > nrows()`.
    pub fn insert_row(&mut self, at: usize, row: &[f64]) -> Result<()> {
        if at == self.nrows {
            return self.push_row(row);
        }
        if at > self.nrows {
            return Err(LinalgError::InvalidParameter(format!(
                "insert_row: index {at} out of bounds for {} rows",
                self.nrows
            )));
        }
        if row.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "insert_row: row of length {} into a store with {} columns",
                row.len(),
                self.cols
            )));
        }
        self.coalesced.take();
        let (s, local) = self.locate(at);
        self.shards[s].insert_row(local, row)?;
        self.nrows += 1;
        if self.shards[s].nrows() > self.shard_rows {
            self.split_shard(s);
        }
        self.rebuild_starts();
        Ok(())
    }

    /// Removes the row at logical index `at`; an emptied shard is dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `at >= nrows()`.
    pub fn remove_row(&mut self, at: usize) -> Result<()> {
        if at >= self.nrows {
            return Err(LinalgError::InvalidParameter(format!(
                "remove_row: index {at} out of bounds for {} rows",
                self.nrows
            )));
        }
        self.coalesced.take();
        let (s, local) = self.locate(at);
        self.shards[s].remove_row(local)?;
        self.nrows -= 1;
        if self.shards[s].nrows() == 0 {
            self.shards.remove(s);
        }
        self.rebuild_starts();
        Ok(())
    }

    /// Splits shard `s` into two halves (the overflow path of
    /// [`ShardedMatrix::insert_row`]).
    fn split_shard(&mut self, s: usize) {
        let total = self.shards[s].nrows();
        let keep = total.div_ceil(2);
        let tail = Matrix::from_vec(
            total - keep,
            self.cols,
            self.shards[s].row_block(keep..total).to_vec(),
        )
        .expect("block dimensions are consistent by construction");
        let old = std::mem::replace(&mut self.shards[s], Matrix::zeros(0, self.cols));
        let mut data = old.into_vec();
        data.truncate(keep * self.cols);
        self.shards[s] = Matrix::from_vec(keep, self.cols, data)
            .expect("truncated buffer keeps row-major shape");
        self.shards.insert(s + 1, tail);
    }

    fn rebuild_starts(&mut self) {
        self.starts.clear();
        let mut acc = 0;
        for shard in &self.shards {
            self.starts.push(acc);
            acc += shard.nrows();
        }
    }

    /// The dense row-major view of the whole store.
    ///
    /// A single-shard store (every database below `shard_rows` rows —
    /// i.e. all paper-scale workloads) returns a direct borrow of its one
    /// shard: zero copies, pointer-stable across calls. A multi-shard
    /// store coalesces once into a cached dense matrix (also
    /// pointer-stable until the next mutation). The coalesced bytes are
    /// identical to what an unsharded store would hold — row order is
    /// preserved exactly.
    pub fn coalesced(&self) -> &Matrix {
        if self.shards.len() == 1 {
            return &self.shards[0];
        }
        self.coalesced.get_or_init(|| {
            let mut data = Vec::with_capacity(self.nrows * self.cols);
            for shard in &self.shards {
                data.extend_from_slice(shard.as_slice());
            }
            Matrix::from_vec(self.nrows, self.cols, data)
                .expect("shard row counts sum to nrows by invariant")
        })
    }

    /// Extracts the given columns, in order, preserving the shard layout
    /// (each shard is projected independently — no dense intermediate).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] if `indices` is empty and
    /// [`LinalgError::InvalidParameter`] if any index is out of bounds.
    pub fn select_columns(&self, indices: &[usize]) -> Result<ShardedMatrix> {
        if indices.is_empty() {
            return Err(LinalgError::Empty("select_columns: no indices".into()));
        }
        if let Some(&bad) = indices.iter().find(|&&j| j >= self.cols) {
            return Err(LinalgError::InvalidParameter(format!(
                "select_columns: index {bad} out of bounds for {} columns",
                self.cols
            )));
        }
        let shards = self
            .shards
            .iter()
            .map(|s| s.select_columns(indices))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedMatrix {
            cols: indices.len(),
            shard_rows: self.shard_rows,
            starts: self.starts.clone(),
            nrows: self.nrows,
            shards,
            pending_reserve: 0,
            coalesced: OnceLock::new(),
        })
    }
}

impl ShardAccess for ShardedMatrix {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.cols
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    fn shard_len(&self, s: usize) -> usize {
        self.shards.get(s).map_or(0, Matrix::nrows)
    }

    fn shard_start(&self, s: usize) -> usize {
        self.starts.get(s).copied().unwrap_or(self.nrows)
    }

    fn with_shard<R>(&self, s: usize, f: impl FnOnce(&Matrix) -> R) -> Result<R> {
        match self.shards.get(s) {
            Some(shard) => Ok(f(shard)),
            None => Err(LinalgError::InvalidParameter(format!(
                "with_shard: shard {s} out of bounds for {} shards",
                self.shards.len()
            ))),
        }
    }
}

impl Clone for ShardedMatrix {
    fn clone(&self) -> Self {
        ShardedMatrix {
            cols: self.cols,
            shard_rows: self.shard_rows,
            shards: self.shards.clone(),
            starts: self.starts.clone(),
            nrows: self.nrows,
            // Capacity hints and the coalesce cache are per-instance:
            // the clone starts clean and rebuilds both on demand.
            pending_reserve: 0,
            coalesced: OnceLock::new(),
        }
    }
}

impl fmt::Debug for ShardedMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The coalesce cache is deliberately excluded: Debug output must
        // be a pure function of logical content + configuration, never of
        // whether a lazy cache happens to be populated.
        f.debug_struct("ShardedMatrix")
            .field("nrows", &self.nrows)
            .field("cols", &self.cols)
            .field("shard_rows", &self.shard_rows)
            .field("shards", &self.shards)
            .finish()
    }
}

impl PartialEq for ShardedMatrix {
    /// Logical content equality: same shape, same rows in the same order.
    /// Shard boundaries and the configured `shard_rows` are layout, not
    /// content — a store rebuilt from the wire format compares equal to
    /// one grown incrementally even when their shard layouts differ.
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.cols == other.cols
            && self.rows_iter().eq(other.rows_iter())
    }
}

// NOTE: `ShardedMatrix` deliberately has no serde impls. The wire format
// for projected planes stays the dense [`Matrix`] representation —
// snapshot types hold a `Matrix` and convert at the boundary
// (`coalesced()` out, [`ShardedMatrix::from_matrix`] in), so snapshots
// written by dense builds and sharded builds interchange freely and the
// shard layout never leaks into persisted bytes.

/// Counters of the spill store's residency traffic, surfaced through the
/// fit report and `flare-cli report`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpillStats {
    /// Shard accesses served from memory.
    pub hits: u64,
    /// Shard accesses that had to read the shard back from disk.
    pub faults: u64,
    /// Shards written out (or dropped, if already on disk) to stay under
    /// the residency budget.
    pub evictions: u64,
    /// Shard accesses served from memory because the background
    /// prefetcher had already faulted the shard in. A subset of `hits`;
    /// always zero when prefetching is disabled (the default).
    #[serde(default)]
    pub prefetch_hits: u64,
}

impl SpillStats {
    /// Fraction of shard accesses served from memory, in `[0, 1]`
    /// (`0.0` when no accesses were recorded).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.faults;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Where a spill-store shard currently lives.
enum Residency {
    /// In memory, evictable when unpinned.
    Resident(Matrix),
    /// Moved out into a running [`ShardStore::with_shard`] closure.
    CheckedOut,
    /// On disk only, in the store's spill directory.
    Spilled,
    /// The background prefetcher is reading it from disk right now; a
    /// concurrent checkout waits on the store's condvar instead of
    /// issuing a second read.
    Faulting,
}

struct Slot {
    rows: usize,
    residency: Residency,
    /// The shard's spill file is current (shards are immutable once
    /// stored, so a written file never needs rewriting).
    on_disk: bool,
    last_touch: u64,
    /// Pin count: pinned shards are never evicted. Checked-out shards are
    /// implicitly pinned for the duration of the access.
    pins: u32,
    /// Set when the resident copy was faulted in by the prefetcher and
    /// has not yet been consumed by a checkout (feeds
    /// [`SpillStats::prefetch_hits`]).
    prefetched: bool,
}

struct StoreState {
    slots: Vec<Slot>,
    /// LRU clock: bumped on every access, stamped into `last_touch`.
    clock: u64,
    /// Shards currently occupying memory: resident, checked out, or
    /// reserved by an in-flight prefetch read (`Faulting`).
    resident: usize,
    stats: SpillStats,
}

/// The lock-guarded heart of a [`ShardStore`], shared with the optional
/// background prefetch thread through an [`Arc`].
struct StoreCore {
    cols: usize,
    dir: PathBuf,
    max_resident: usize,
    state: Mutex<StoreState>,
    /// Signalled whenever a `Faulting` slot settles (the prefetch read
    /// finished, successfully or not), waking checkouts parked on it.
    cond: Condvar,
}

/// Monotonic id making each store's spill subdirectory unique within the
/// process, so two stores sharing a spill root never collide.
static STORE_ID: AtomicU64 = AtomicU64::new(0);

/// An out-of-core shard store: holds the same logical rows as the
/// [`ShardedMatrix`] it was built from, but keeps at most `max_resident`
/// shards in memory, writing the least-recently-touched ones to a spill
/// directory and faulting them back on access.
///
/// Spill files are written atomically (write to `…​.tmp`, then rename —
/// the same discipline as the stream checkpoints), are deleted on drop,
/// and hold raw little-endian `f64` row-major bytes, so a faulted shard
/// is bit-identical to the one written out. Combined with the
/// [`ShardAccess`] fold order being independent of residency, a pipeline
/// run with spill enabled is byte-identical to one without.
///
/// An optional background prefetcher ([`ShardStore::with_prefetch`])
/// overlaps the disk read of upcoming shards with compute on the current
/// one. Readahead is invisible to the determinism contract: it changes
/// only *when* bytes move, never which bytes a fold observes.
///
/// # Examples
///
/// ```
/// use flare_linalg::{ShardAccess, ShardedMatrix, ShardStore};
///
/// let mut m = ShardedMatrix::new(2, 2);
/// for i in 0..6 {
///     m.push_row(&[i as f64, -(i as f64)]).unwrap();
/// }
/// let dir = std::env::temp_dir().join("flare-doc-spill");
/// let store = ShardStore::spill_to(m, &dir, 1).unwrap();
/// let mut total = 0.0;
/// for s in 0..store.shard_count() {
///     total += store.with_shard(s, |shard| shard.row(0)[0]).unwrap();
/// }
/// assert_eq!(total, 0.0 + 2.0 + 4.0);
/// assert!(store.stats().evictions > 0);
/// ```
pub struct ShardStore {
    cols: usize,
    shard_rows: usize,
    nrows: usize,
    /// Shard count, cached so trait reads never take the lock.
    shards: usize,
    max_resident: usize,
    /// Shards enqueued ahead of a checkout when prefetching is on.
    prefetch_depth: usize,
    core: Arc<StoreCore>,
    /// Hint channel into the prefetch thread; present iff prefetching is
    /// enabled. Wrapped in a `Mutex` so the store stays `Sync` on every
    /// supported toolchain.
    prefetch_tx: Option<Mutex<mpsc::Sender<usize>>>,
    prefetch_join: Option<std::thread::JoinHandle<()>>,
}

impl ShardStore {
    /// Takes ownership of a [`ShardedMatrix`] and rehomes it under `root`
    /// (in a unique per-store subdirectory), immediately evicting down to
    /// `max_resident` in-memory shards (clamped to at least 1).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Io`] if the spill directory cannot be
    /// created or an evicted shard cannot be written.
    pub fn spill_to(m: ShardedMatrix, root: &std::path::Path, max_resident: usize) -> Result<Self> {
        let id = STORE_ID.fetch_add(1, Ordering::Relaxed);
        let dir = root.join(format!("shard-store-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir)
            .map_err(|e| LinalgError::Io(format!("create spill dir {}: {e}", dir.display())))?;
        let cols = m.cols;
        let shard_rows = m.shard_rows;
        let nrows = m.nrows;
        let slots: Vec<Slot> = m
            .shards
            .into_iter()
            .map(|shard| Slot {
                rows: shard.nrows(),
                residency: Residency::Resident(shard),
                on_disk: false,
                last_touch: 0,
                pins: 0,
                prefetched: false,
            })
            .collect();
        let resident = slots.len();
        let shards = slots.len();
        let core = Arc::new(StoreCore {
            cols,
            dir,
            max_resident: max_resident.max(1),
            state: Mutex::new(StoreState {
                slots,
                clock: 0,
                resident,
                stats: SpillStats::default(),
            }),
            cond: Condvar::new(),
        });
        core.enforce_budget(&mut core.lock())?;
        Ok(ShardStore {
            cols,
            shard_rows,
            nrows,
            shards,
            max_resident: max_resident.max(1),
            prefetch_depth: 0,
            core,
            prefetch_tx: None,
            prefetch_join: None,
        })
    }

    /// Enables background readahead: every checkout of shard `s` enqueues
    /// the next `depth` shards, which a dedicated thread faults in off the
    /// caller's critical path. Sequential shard walks then overlap compute
    /// on shard `s` with the disk read of `s + 1`; satisfied readaheads
    /// surface as [`SpillStats::prefetch_hits`].
    ///
    /// The prefetcher is strictly budget- and pin-respecting: it makes
    /// room only by evicting least-recently-touched *unpinned* resident
    /// shards, and drops a readahead request entirely rather than exceed
    /// `max_resident` or touch a pin. (With `max_resident` of 1 there is
    /// never a spare slot, so readahead degrades to a no-op.) A `depth`
    /// of 0 leaves the store unchanged.
    pub fn with_prefetch(mut self, depth: usize) -> Self {
        if depth == 0 || self.shards == 0 {
            return self;
        }
        let (tx, rx) = mpsc::channel::<usize>();
        let core = Arc::clone(&self.core);
        let join = std::thread::Builder::new()
            .name("flare-shard-prefetch".into())
            .spawn(move || {
                while let Ok(s) = rx.recv() {
                    core.prefetch_one(s);
                }
            })
            .expect("spawn shard prefetch thread");
        self.prefetch_depth = depth;
        self.prefetch_tx = Some(Mutex::new(tx));
        self.prefetch_join = Some(join);
        self
    }

    /// Enqueues an explicit readahead hint for shard `s`. A no-op when
    /// prefetching is disabled or `s` is out of bounds; never blocks on
    /// disk I/O.
    pub fn prefetch(&self, s: usize) {
        if s >= self.shards {
            return;
        }
        if let Some(tx) = &self.prefetch_tx {
            if let Ok(tx) = tx.lock() {
                let _ = tx.send(s);
            }
        }
    }

    /// Readahead hints for the shards following `s`, issued on every
    /// checkout so sequential scans stay ahead of the fold.
    fn hint_sequential(&self, s: usize) {
        if self.prefetch_tx.is_none() {
            return;
        }
        let end = s.saturating_add(1 + self.prefetch_depth).min(self.shards);
        for next in s + 1..end {
            self.prefetch(next);
        }
    }

    /// The residency-traffic counters accumulated so far.
    pub fn stats(&self) -> SpillStats {
        self.core.lock().stats
    }

    /// Shards currently occupying memory.
    pub fn resident_shards(&self) -> usize {
        self.core.lock().resident
    }

    /// The store's private spill directory.
    pub fn spill_dir(&self) -> &std::path::Path {
        &self.core.dir
    }

    /// Pins shard `s`: a pinned shard is never evicted, so an in-flight
    /// chunked producer can hold its working shards in memory without
    /// thrashing against the LRU. Pins nest; balance with
    /// [`ShardStore::unpin`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `s` is out of bounds.
    pub fn pin(&self, s: usize) -> Result<()> {
        let mut state = self.core.lock();
        let n = state.slots.len();
        let slot = state.slots.get_mut(s).ok_or_else(|| {
            LinalgError::InvalidParameter(format!("pin: shard {s} out of bounds for {n} shards"))
        })?;
        slot.pins += 1;
        Ok(())
    }

    /// Releases one pin on shard `s` (a no-op at zero pins).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidParameter`] if `s` is out of bounds.
    pub fn unpin(&self, s: usize) -> Result<()> {
        let mut state = self.core.lock();
        let n = state.slots.len();
        let slot = state.slots.get_mut(s).ok_or_else(|| {
            LinalgError::InvalidParameter(format!("unpin: shard {s} out of bounds for {n} shards"))
        })?;
        slot.pins = slot.pins.saturating_sub(1);
        self.core.enforce_budget(&mut state)?;
        Ok(())
    }
}

impl StoreCore {
    fn lock(&self) -> std::sync::MutexGuard<'_, StoreState> {
        self.state.lock().expect("shard store lock poisoned")
    }

    fn shard_path(&self, s: usize) -> PathBuf {
        self.dir.join(format!("shard-{s:05}.bin"))
    }

    fn write_shard(&self, s: usize, shard: &Matrix) -> Result<()> {
        let mut bytes = Vec::with_capacity(shard.as_slice().len() * 8);
        for v in shard.as_slice() {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let path = self.shard_path(s);
        let tmp = self.dir.join(format!("shard-{s:05}.bin.tmp"));
        std::fs::write(&tmp, &bytes)
            .map_err(|e| LinalgError::Io(format!("write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| LinalgError::Io(format!("rename {}: {e}", path.display())))?;
        Ok(())
    }

    fn read_shard(&self, s: usize, rows: usize) -> Result<Matrix> {
        let path = self.shard_path(s);
        let bytes = std::fs::read(&path)
            .map_err(|e| LinalgError::Io(format!("read {}: {e}", path.display())))?;
        let expect = rows * self.cols * 8;
        if bytes.len() != expect {
            return Err(LinalgError::Io(format!(
                "spill file {} holds {} bytes, expected {expect}",
                path.display(),
                bytes.len()
            )));
        }
        let data: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect();
        Matrix::from_vec(rows, self.cols, data)
    }

    /// Evicts the least-recently-touched unpinned resident shard, writing
    /// it out first if its spill file is stale (already-written shards are
    /// dropped without a rewrite — spill files are immutable). Returns
    /// `false` when nothing is evictable.
    fn evict_one(&self, state: &mut StoreState) -> Result<bool> {
        let victim = state
            .slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.pins == 0 && matches!(slot.residency, Residency::Resident(_)))
            .min_by_key(|(_, slot)| slot.last_touch)
            .map(|(s, _)| s);
        let Some(s) = victim else { return Ok(false) };
        if !state.slots[s].on_disk {
            let Residency::Resident(shard) = &state.slots[s].residency else {
                unreachable!("victim filter keeps only resident slots");
            };
            self.write_shard(s, shard)?;
            state.slots[s].on_disk = true;
        }
        state.slots[s].residency = Residency::Spilled;
        state.slots[s].prefetched = false;
        state.resident -= 1;
        state.stats.evictions += 1;
        Ok(true)
    }

    /// Evicts least-recently-touched unpinned resident shards until the
    /// residency budget is met.
    fn enforce_budget(&self, state: &mut StoreState) -> Result<()> {
        while state.resident > self.max_resident {
            if !self.evict_one(state)? {
                break;
            }
        }
        Ok(())
    }

    /// One readahead request, run on the prefetch thread: fault shard `s`
    /// in off the caller's critical path so the next sequential checkout
    /// is served from memory. Skips shards that are already in memory or
    /// in flight, and drops the request when no unpinned shard can be
    /// evicted to make room. Readahead errors are deliberately swallowed:
    /// the shard stays spilled and the demand path faults it in (and
    /// reports the error) on the next checkout.
    fn prefetch_one(&self, s: usize) {
        let rows = {
            let mut state = self.lock();
            let Some(slot) = state.slots.get(s) else {
                return;
            };
            if !matches!(slot.residency, Residency::Spilled) {
                return;
            }
            while state.resident >= self.max_resident {
                match self.evict_one(&mut state) {
                    Ok(true) => {}
                    Ok(false) | Err(_) => return,
                }
            }
            // Reserve the slot before dropping the lock so concurrent
            // demand faults cannot land the store over budget while the
            // readahead is in flight.
            state.resident += 1;
            let slot = &mut state.slots[s];
            slot.residency = Residency::Faulting;
            slot.rows
        };
        // Read outside the lock: checkouts of other shards proceed, and a
        // checkout of *this* shard parks on the condvar.
        match self.read_shard(s, rows) {
            Ok(m) => {
                let mut state = self.lock();
                state.clock += 1;
                let clock = state.clock;
                let slot = &mut state.slots[s];
                slot.residency = Residency::Resident(m);
                slot.prefetched = true;
                // Fresh touch so the budget sweep prefers older shards
                // over the readahead the scan is about to consume.
                slot.last_touch = clock;
                self.cond.notify_all();
            }
            Err(_) => {
                let mut state = self.lock();
                state.slots[s].residency = Residency::Spilled;
                state.resident -= 1;
                self.cond.notify_all();
            }
        }
    }
}

impl ShardAccess for ShardStore {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.cols
    }

    fn shard_count(&self) -> usize {
        self.shards
    }

    fn shard_rows(&self) -> usize {
        self.shard_rows
    }

    fn shard_len(&self, s: usize) -> usize {
        self.core.lock().slots.get(s).map_or(0, |slot| slot.rows)
    }

    fn with_shard<R>(&self, s: usize, f: impl FnOnce(&Matrix) -> R) -> Result<R> {
        // Check the shard out (faulting it in if spilled) so the lock is
        // released while the caller's closure runs; checked-out shards
        // count as pinned, so concurrent accesses to *other* shards can
        // evict without touching this one.
        let shard = self.checkout(s)?;
        self.hint_sequential(s);
        let r = f(&shard);
        self.checkin(s, shard)?;
        Ok(r)
    }
}

impl ShardStore {
    /// Takes shard `s` out of its slot, faulting it from disk if spilled,
    /// leaving the slot `CheckedOut` (implicitly pinned). A shard the
    /// prefetcher is mid-read on is waited for, never read twice.
    fn checkout(&self, s: usize) -> Result<Matrix> {
        let rows = {
            let mut state = self.core.lock();
            loop {
                let n = state.slots.len();
                if s >= n {
                    return Err(LinalgError::InvalidParameter(format!(
                        "with_shard: shard {s} out of bounds for {n} shards"
                    )));
                }
                state.clock += 1;
                let clock = state.clock;
                let slot = &mut state.slots[s];
                slot.last_touch = clock;
                match std::mem::replace(&mut slot.residency, Residency::CheckedOut) {
                    Residency::Resident(m) => {
                        slot.pins += 1;
                        let prefetched = std::mem::take(&mut slot.prefetched);
                        state.stats.hits += 1;
                        if prefetched {
                            state.stats.prefetch_hits += 1;
                        }
                        return Ok(m);
                    }
                    Residency::Spilled => {
                        slot.pins += 1;
                        break slot.rows;
                    }
                    Residency::Faulting => {
                        // The prefetcher is already reading this shard;
                        // park until it settles, then re-inspect.
                        slot.residency = Residency::Faulting;
                        state = self
                            .core
                            .cond
                            .wait(state)
                            .expect("shard store lock poisoned");
                    }
                    Residency::CheckedOut => {
                        slot.residency = Residency::CheckedOut;
                        return Err(LinalgError::InvalidParameter(format!(
                            "with_shard: re-entrant access to shard {s}"
                        )));
                    }
                }
            }
        };
        // Fault path: read outside the lock (read_shard only touches
        // immutable fields), then account for the new resident shard.
        match self.core.read_shard(s, rows) {
            Ok(m) => {
                let mut state = self.core.lock();
                state.stats.faults += 1;
                state.resident += 1;
                Ok(m)
            }
            Err(e) => {
                let mut state = self.core.lock();
                state.slots[s].residency = Residency::Spilled;
                state.slots[s].pins -= 1;
                Err(e)
            }
        }
    }

    /// Returns shard `s` to its slot and re-applies the residency budget.
    fn checkin(&self, s: usize, shard: Matrix) -> Result<()> {
        let mut state = self.core.lock();
        state.slots[s].residency = Residency::Resident(shard);
        state.slots[s].pins -= 1;
        self.core.enforce_budget(&mut state)
    }
}

impl Drop for ShardStore {
    /// Shuts the prefetcher down (closing the hint channel, then joining
    /// the thread) before best-effort cleanup: spill files and the
    /// per-store directory are scratch space, not a persistence format.
    fn drop(&mut self) {
        self.prefetch_tx = None; // closes the channel; recv() errors out
        if let Some(join) = self.prefetch_join.take() {
            let _ = join.join();
        }
        let state = self.core.lock();
        for (s, slot) in state.slots.iter().enumerate() {
            if slot.on_disk {
                let _ = std::fs::remove_file(self.core.shard_path(s));
            }
        }
        drop(state);
        let _ = std::fs::remove_dir(&self.core.dir);
    }
}

impl fmt::Debug for ShardStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.core.lock();
        f.debug_struct("ShardStore")
            .field("nrows", &self.nrows)
            .field("cols", &self.cols)
            .field("shard_rows", &self.shard_rows)
            .field("shards", &self.shards)
            .field("resident", &state.resident)
            .field("max_resident", &self.max_resident)
            .field("prefetch_depth", &self.prefetch_depth)
            .field("dir", &self.core.dir)
            .field("stats", &state.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize, shard_rows: usize) -> ShardedMatrix {
        let mut m = ShardedMatrix::new(3, shard_rows);
        for i in 0..n {
            let v = i as f64;
            m.push_row(&[v, v * 0.5, -v]).unwrap();
        }
        m
    }

    #[test]
    fn rows_match_dense_for_every_shard_size() {
        let dense = filled(17, usize::MAX).coalesced().clone();
        for shard_rows in [1, 2, 3, 5, 16, 17, 100] {
            let sharded = filled(17, shard_rows);
            assert_eq!(sharded.nrows(), 17);
            for i in 0..17 {
                assert_eq!(
                    sharded.row(i),
                    dense.row(i),
                    "shard_rows={shard_rows} row {i}"
                );
            }
            assert_eq!(sharded.coalesced(), &dense, "shard_rows={shard_rows}");
            assert_eq!(sharded.rows_iter().count(), 17, "shard_rows={shard_rows}");
        }
    }

    #[test]
    fn shards_never_exceed_capacity() {
        let mut m = filled(50, 8);
        for at in [0, 7, 8, 25, 49] {
            m.insert_row(at, &[9.0, 9.0, 9.0]).unwrap();
        }
        for shard in m.shards() {
            assert!(shard.nrows() <= 8, "shard of {} rows", shard.nrows());
            assert!(shard.nrows() > 0, "empty shard left behind");
        }
        assert_eq!(m.nrows(), 55);
    }

    #[test]
    fn insert_matches_dense_semantics() {
        let mut sharded = filled(10, 3);
        let mut dense = filled(10, usize::MAX).coalesced().clone();
        for (at, v) in [(0, 100.0), (5, 200.0), (12, 300.0), (7, 400.0)] {
            sharded.insert_row(at, &[v, v, v]).unwrap();
            dense.insert_row(at, &[v, v, v]).unwrap();
        }
        assert_eq!(sharded.coalesced(), &dense);
        // Equality is logical: a re-split of the same contents is equal.
        assert_eq!(sharded, ShardedMatrix::from_matrix(&dense, 4));
    }

    #[test]
    fn remove_matches_dense_semantics() {
        let mut sharded = filled(9, 2);
        let mut dense = filled(9, usize::MAX).coalesced().clone();
        for at in [8, 0, 3] {
            sharded.remove_row(at).unwrap();
            dense.remove_row(at).unwrap();
        }
        assert_eq!(sharded.coalesced(), &dense);
        assert!(sharded.remove_row(6).is_err());
        for shard in sharded.shards() {
            assert!(shard.nrows() > 0);
        }
    }

    #[test]
    fn coalesced_is_pointer_stable_between_mutations() {
        let m = filled(10, 3);
        let a = m.coalesced() as *const Matrix;
        let b = m.coalesced() as *const Matrix;
        assert_eq!(a, b);
        // Single-shard stores borrow the shard directly.
        let single = filled(5, 100);
        assert_eq!(single.shard_count(), 1);
        assert!(std::ptr::eq(single.coalesced(), &single.shards()[0]));
    }

    #[test]
    fn mutation_invalidates_the_coalesced_cache() {
        let mut m = filled(10, 3);
        assert_eq!(m.coalesced().row(4)[0], 4.0);
        m.row_mut(4)[0] = 99.0;
        assert_eq!(m.row(4)[0], 99.0);
        assert_eq!(m.coalesced().row(4)[0], 99.0);
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.coalesced().nrows(), 11);
    }

    #[test]
    fn select_columns_projects_each_shard() {
        let m = filled(11, 4);
        let p = m.select_columns(&[2, 0]).unwrap();
        assert_eq!(p.ncols(), 2);
        assert_eq!(p.shard_count(), m.shard_count());
        for i in 0..11 {
            assert_eq!(p.row(i), &[m.row(i)[2], m.row(i)[0]]);
        }
        assert!(m.select_columns(&[]).is_err());
        assert!(m.select_columns(&[3]).is_err());
    }

    #[test]
    fn validation_and_empty_store() {
        let mut m = ShardedMatrix::new(2, 4);
        assert!(m.is_empty());
        assert_eq!(m.coalesced().nrows(), 0);
        assert!(m.push_row(&[1.0]).is_err());
        assert!(m.insert_row(1, &[1.0, 2.0]).is_err());
        assert!(m.remove_row(0).is_err());
        m.insert_row(0, &[1.0, 2.0]).unwrap(); // insert-at-end == append
        assert_eq!(m.nrows(), 1);
    }

    #[test]
    fn clone_and_debug_are_layout_faithful() {
        let m = filled(7, 2);
        let c = m.clone();
        assert_eq!(m, c);
        assert_eq!(c.shard_count(), m.shard_count());
        // Debug is cache-independent: rendering before and after a
        // coalesce produces identical text.
        let before = format!("{m:?}");
        let _ = m.coalesced();
        assert_eq!(before, format!("{m:?}"));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut m = ShardedMatrix::new(1, 0);
        assert_eq!(m.shard_rows(), 1);
        m.push_row(&[1.0]).unwrap();
        m.push_row(&[2.0]).unwrap();
        assert_eq!(m.shard_count(), 2);
    }

    #[test]
    fn reserve_rows_is_content_neutral() {
        let mut reserved = ShardedMatrix::new(3, 4);
        reserved.reserve_rows(11);
        let mut plain = ShardedMatrix::new(3, 4);
        for i in 0..11 {
            let v = i as f64;
            reserved.push_row(&[v, v * 0.5, -v]).unwrap();
            plain.push_row(&[v, v * 0.5, -v]).unwrap();
        }
        assert_eq!(reserved, plain);
        assert_eq!(reserved.shard_count(), plain.shard_count());
        for (a, b) in reserved.shards().iter().zip(plain.shards()) {
            assert_eq!(a.nrows(), b.nrows());
        }
        // Reserving into a partially filled tail and overshooting are both
        // fine — it is a hint, never a constraint.
        reserved.reserve_rows(2);
        reserved.push_row(&[99.0, 99.0, 99.0]).unwrap();
        assert_eq!(reserved.nrows(), 12);
        // Unbounded shard capacity must not overflow the reserve math.
        let mut unbounded = ShardedMatrix::new(1, usize::MAX);
        unbounded.reserve_rows(3);
        unbounded.push_row(&[1.0]).unwrap();
        assert_eq!(unbounded.nrows(), 1);
    }

    fn spill_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("flare-spill-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn shard_access_trait_reads_match_direct_reads() {
        let m = filled(17, 4);
        assert_eq!(ShardAccess::nrows(&m), 17);
        assert_eq!(ShardAccess::ncols(&m), 3);
        assert_eq!(ShardAccess::shard_rows(&m), 4);
        let mut seen = Vec::new();
        for s in 0..ShardAccess::shard_count(&m) {
            m.with_shard(s, |shard| {
                for row in shard.rows_iter() {
                    seen.push(row[0]);
                }
            })
            .unwrap();
        }
        let direct: Vec<f64> = m.rows_iter().map(|r| r[0]).collect();
        assert_eq!(seen, direct);
        assert!(m.with_shard(99, |_| ()).is_err());
    }

    #[test]
    fn spill_store_roundtrips_bytes_under_memory_pressure() {
        let m = filled(23, 4); // 6 shards
        let expect: Vec<Vec<f64>> = m.rows_iter().map(|r| r.to_vec()).collect();
        let dir = spill_dir("roundtrip");
        let store = ShardStore::spill_to(m, &dir, 2).unwrap();
        assert_eq!(store.nrows(), 23);
        assert_eq!(store.ncols(), 3);
        assert_eq!(store.shard_count(), 6);
        assert!(store.resident_shards() <= 2);
        // Two full sweeps: the first faults spilled shards back in, the
        // second re-faults what the first evicted. Bytes must survive.
        for sweep in 0..2 {
            let mut at = 0;
            for s in 0..store.shard_count() {
                store
                    .with_shard(s, |shard| {
                        for row in shard.rows_iter() {
                            let want = &expect[at];
                            for (x, y) in row.iter().zip(want) {
                                assert_eq!(x.to_bits(), y.to_bits(), "sweep {sweep} row {at}");
                            }
                            at += 1;
                        }
                    })
                    .unwrap();
                assert!(store.resident_shards() <= 2, "budget violated");
            }
            assert_eq!(at, 23);
        }
        let stats = store.stats();
        assert!(stats.evictions >= 4, "evictions {}", stats.evictions);
        assert!(stats.faults >= 4, "faults {}", stats.faults);
        // A re-touch of the most recent shard is served from memory.
        let last = store.shard_count() - 1;
        store.with_shard(last, |_| ()).unwrap();
        assert!(store.stats().hits >= 1, "hits {}", store.stats().hits);
        // Spill files exist while the store lives, and vanish on drop.
        let dir_path = store.spill_dir().to_path_buf();
        assert!(dir_path.exists());
        drop(store);
        assert!(!dir_path.exists(), "spill dir should be removed on drop");
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn spill_store_pins_block_eviction() {
        let m = filled(12, 3); // 4 shards
        let dir = spill_dir("pins");
        let store = ShardStore::spill_to(m, &dir, 1).unwrap();
        store.with_shard(0, |_| ()).unwrap(); // shard 0 resident
        store.pin(0).unwrap();
        // Touching every other shard evicts around the pin, never through it.
        for s in 1..4 {
            store.with_shard(s, |_| ()).unwrap();
        }
        // Shard 0 must still be served from memory: hits, not faults.
        let before = store.stats().faults;
        store.with_shard(0, |_| ()).unwrap();
        assert_eq!(store.stats().faults, before, "pinned shard was evicted");
        store.unpin(0).unwrap();
        assert!(store.pin(9).is_err());
        assert!(store.unpin(9).is_err());
        drop(store);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn spill_store_single_resident_shard_streams_a_full_scan() {
        // max_resident = 1 forces the worst case: every access after the
        // first evicts the previous shard. The scan must still see every
        // row in order.
        let m = filled(10, 2); // 5 shards
        let dir = spill_dir("scan");
        let store = ShardStore::spill_to(m, &dir, 1).unwrap();
        let mut seen = Vec::new();
        for s in 0..store.shard_count() {
            store
                .with_shard(s, |shard| {
                    for row in shard.rows_iter() {
                        seen.push(row[0]);
                    }
                })
                .unwrap();
            assert_eq!(store.resident_shards(), 1);
        }
        assert_eq!(seen, (0..10).map(|i| i as f64).collect::<Vec<_>>());
        drop(store);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn shard_len_and_start_match_layout() {
        let m = filled(10, 3); // shards of 3, 3, 3, 1 rows
        assert_eq!(ShardAccess::shard_len(&m, 0), 3);
        assert_eq!(ShardAccess::shard_len(&m, 3), 1);
        assert_eq!(ShardAccess::shard_len(&m, 4), 0);
        assert_eq!(ShardAccess::shard_start(&m, 0), 0);
        assert_eq!(ShardAccess::shard_start(&m, 3), 9);
        assert_eq!(ShardAccess::shard_start(&m, 4), 10);
        let dir = spill_dir("lens");
        let store = ShardStore::spill_to(m, &dir, 1).unwrap();
        assert_eq!(store.shard_len(2), 3);
        assert_eq!(store.shard_len(9), 0);
        assert_eq!(store.shard_start(3), 9); // default impl sums lens
        drop(store);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn prefetch_hit_is_counted_and_skips_the_demand_fault() {
        let m = filled(20, 2); // 10 shards
        let dir = spill_dir("prefetch-hit");
        let store = ShardStore::spill_to(m, &dir, 3).unwrap().with_prefetch(2);
        let base = store.stats();
        assert_eq!(base.prefetch_hits, 0);
        // Shard 0 was evicted by the initial budget pass; ask the
        // prefetcher for it and wait until its eviction-for-room shows up
        // in the stats — from that point shard 0 is Faulting or Resident,
        // so the checkout below is served without a demand fault.
        store.prefetch(0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while store.stats().evictions == base.evictions {
            assert!(
                std::time::Instant::now() < deadline,
                "prefetch thread never picked up the hint"
            );
            std::thread::yield_now();
        }
        let faults_before = store.stats().faults;
        store
            .with_shard(0, |shard| assert_eq!(shard.row(0)[0], 0.0))
            .unwrap();
        let stats = store.stats();
        assert_eq!(
            stats.faults, faults_before,
            "prefetched shard demand-faulted"
        );
        assert_eq!(stats.prefetch_hits, 1);
        assert!(store.resident_shards() <= 3, "budget violated by readahead");
        drop(store);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn prefetch_never_evicts_pinned_shards() {
        let m = filled(12, 2); // 6 shards
        let dir = spill_dir("prefetch-pins");
        let store = ShardStore::spill_to(m, &dir, 2).unwrap().with_prefetch(3);
        // Make shard 0 resident and pin it: half the budget is immovable.
        store.with_shard(0, |_| ()).unwrap();
        store.pin(0).unwrap();
        // Walk the rest; readahead evicts freely among unpinned shards.
        for s in 1..store.shard_count() {
            store.with_shard(s, |_| ()).unwrap();
            assert!(store.resident_shards() <= 2, "budget violated");
        }
        // Shard 0 was never evicted — by the LRU sweep or the prefetcher —
        // so touching it is a hit, not a fault.
        let before = store.stats().faults;
        store.with_shard(0, |_| ()).unwrap();
        assert_eq!(
            store.stats().faults,
            before,
            "pinned shard was evicted by readahead"
        );
        store.unpin(0).unwrap();
        drop(store);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn prefetch_scan_preserves_bytes_and_budget() {
        let m = filled(23, 4); // 6 shards
        let expect: Vec<Vec<f64>> = m.rows_iter().map(|r| r.to_vec()).collect();
        let dir = spill_dir("prefetch-scan");
        let store = ShardStore::spill_to(m, &dir, 2).unwrap().with_prefetch(2);
        for sweep in 0..3 {
            let mut at = 0;
            for s in 0..store.shard_count() {
                store
                    .with_shard(s, |shard| {
                        for row in shard.rows_iter() {
                            for (x, y) in row.iter().zip(&expect[at]) {
                                assert_eq!(x.to_bits(), y.to_bits(), "sweep {sweep} row {at}");
                            }
                            at += 1;
                        }
                    })
                    .unwrap();
                assert!(store.resident_shards() <= 2, "budget violated");
            }
            assert_eq!(at, 23);
        }
        let stats = store.stats();
        assert!(stats.prefetch_hits <= stats.hits);
        let dir_path = store.spill_dir().to_path_buf();
        drop(store);
        assert!(!dir_path.exists(), "spill dir should be removed on drop");
        let _ = std::fs::remove_dir(&dir);
    }
}
