//! Correlation-based metric refinement (§4.2 "Refinement").
//!
//! Many raw metrics are near-duplicates of each other: memory bandwidth is
//! LLC-miss count × payload size, CPI is 1/IPC, and so on. Keeping these
//! duplicates would let a single underlying behaviour dominate the PCA by
//! appearing several times. The refinement step computes all pairwise
//! Pearson correlations over the scenario corpus and greedily drops every
//! metric that is highly correlated with an already-kept one — the paper
//! reduces "100+ metrics to 85 metrics with weaker correlations".

use crate::database::MetricDatabase;
use crate::error::{MetricsError, Result};
use crate::schema::MetricId;
use flare_linalg::stats::{gather_column, pearson, spearman};
use flare_linalg::{LinalgError, Matrix, ShardAccess};
use serde::{Deserialize, Serialize};

/// Which correlation coefficient drives the pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CorrelationMethod {
    /// Pearson (linear) correlation — what the paper's duplicates (e.g.
    /// BW = misses × payload) exhibit exactly.
    #[default]
    Pearson,
    /// Spearman rank correlation — also catches monotone nonlinear
    /// duplicates and resists telemetry outliers.
    Spearman,
}

/// One metric dropped during refinement, with the metric that subsumed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroppedMetric {
    /// The pruned metric.
    pub dropped: MetricId,
    /// The kept metric it was correlated with.
    pub kept: MetricId,
    /// Their Pearson correlation over the corpus.
    pub correlation: f64,
}

/// Outcome of the refinement pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinementReport {
    /// Indices (into the original schema) of the metrics kept, ascending.
    pub kept_indices: Vec<usize>,
    /// Every pruned metric with its justification.
    pub dropped: Vec<DroppedMetric>,
    /// The |correlation| threshold that was applied.
    pub threshold: f64,
}

impl RefinementReport {
    /// Number of metrics kept.
    pub fn kept_count(&self) -> usize {
        self.kept_indices.len()
    }

    /// Number of metrics pruned.
    pub fn dropped_count(&self) -> usize {
        self.dropped.len()
    }
}

/// Computes the full |Pearson| correlation matrix between the columns of
/// `data`.
///
/// This dense entry point is the **differential oracle** for
/// [`correlation_matrix_sharded`]; production refinement streams shards
/// and never coalesces the corpus.
///
/// # Errors
///
/// Propagates [`MetricsError::Linalg`] if `data` has no rows.
pub fn correlation_matrix(data: &Matrix) -> Result<Matrix> {
    correlation_matrix_with(data, CorrelationMethod::Pearson)
}

/// [`correlation_matrix`] with an explicit coefficient choice.
///
/// # Errors
///
/// Propagates [`MetricsError::Linalg`] if `data` has no rows.
pub fn correlation_matrix_with(data: &Matrix, method: CorrelationMethod) -> Result<Matrix> {
    let d = data.ncols();
    let cols: Vec<Vec<f64>> = (0..d).map(|j| data.col(j)).collect();
    let mut m = Matrix::zeros(d, d);
    for i in 0..d {
        m[(i, i)] = 1.0;
        for j in (i + 1)..d {
            let r = match method {
                CorrelationMethod::Pearson => pearson(&cols[i], &cols[j])?,
                CorrelationMethod::Spearman => spearman(&cols[i], &cols[j])?,
            };
            m[(i, j)] = r;
            m[(j, i)] = r;
        }
    }
    Ok(m)
}

/// Shard-streaming [`correlation_matrix_with`]: matches the dense oracle
/// without ever materializing the n×d matrix.
///
/// Pearson runs two shard passes as a **two-level fold**: every shard
/// produces a partial accumulator (column sums in pass 1; `sxx[j]` and
/// upper-triangle `sxy[(i, j)]` in pass 2), and the partials are combined
/// in shard-index order. Within a shard, each accumulator receives
/// exactly the additions the dense pairwise [`pearson`] performs, in the
/// same row order — so a **single-shard** store matches the dense oracle
/// to the bit (including the `sxx ≤ ε → 0.0` constant-column rule), and a
/// multi-shard store matches to rounding (the partial-combine reassociates
/// the sums at shard boundaries). The fold shape is fixed per layout,
/// never per thread count: [`correlation_matrix_sharded_threaded`] is
/// bit-identical for every `threads` setting, and this serial entry point
/// is that fold at one thread. Peak transient allocation is O(d²)
/// accumulators per in-flight shard plus the shard itself.
///
/// Spearman needs full-column ranks, so it gathers two columns at a time
/// via [`gather_column`] — O(n) per pair, still never n×d — and defers to
/// the identical rank-based [`spearman`] (bit-identical to dense for
/// every layout).
///
/// # Errors
///
/// Propagates [`MetricsError::Linalg`] exactly where the dense oracle
/// would: an empty store errors once a pairwise coefficient is required
/// (d ≥ 2), and shard-access failures surface as-is.
pub fn correlation_matrix_sharded<A: ShardAccess + Sync>(
    data: &A,
    method: CorrelationMethod,
) -> Result<Matrix> {
    correlation_matrix_sharded_threaded(data, method, Some(1))
}

/// [`correlation_matrix_sharded`] with the per-shard moment passes fanned
/// out across `threads` workers (`None` = all cores). Partials are
/// combined in shard-index order regardless of which worker produced
/// them, so the result is **bit-identical across every thread count** —
/// `Some(1)` is the reference the parallel runs must reproduce exactly.
///
/// # Errors
///
/// Same as [`correlation_matrix_sharded`].
pub fn correlation_matrix_sharded_threaded<A: ShardAccess + Sync>(
    data: &A,
    method: CorrelationMethod,
    threads: Option<usize>,
) -> Result<Matrix> {
    let d = data.ncols();
    let n = data.nrows();
    if n == 0 {
        if d >= 2 {
            // The dense path errors on the first pairwise call; replicate
            // its exact message per method.
            let what = match method {
                CorrelationMethod::Pearson => "pearson of empty slices",
                CorrelationMethod::Spearman => "spearman of empty slices",
            };
            return Err(LinalgError::Empty(what.into()).into());
        }
        let mut m = Matrix::zeros(d, d);
        for i in 0..d {
            m[(i, i)] = 1.0;
        }
        return Ok(m);
    }
    match method {
        CorrelationMethod::Pearson => {
            // Pass 1: per-shard column sums, combined in shard order.
            let sum_partials = flare_exec::par_map_range(data.shard_count(), threads, |s| {
                data.with_shard(s, |shard| {
                    let mut acc = vec![0.0; d];
                    for row in shard.rows_iter() {
                        for (a, v) in acc.iter_mut().zip(row) {
                            *a += v;
                        }
                    }
                    acc
                })
            });
            let mut sums: Option<Vec<f64>> = None;
            for partial in sum_partials {
                let partial = partial?;
                match &mut sums {
                    None => sums = Some(partial),
                    Some(t) => {
                        for (a, b) in t.iter_mut().zip(&partial) {
                            *a += b;
                        }
                    }
                }
            }
            let sums = sums.unwrap_or_else(|| vec![0.0; d]);
            let means: Vec<f64> = sums.iter().map(|&s| s / n as f64).collect();
            // Pass 2: per-shard squared deviations and cross-products
            // about the pass-1 means, combined in shard order.
            let moment_partials = flare_exec::par_map_range(data.shard_count(), threads, |s| {
                data.with_shard(s, |shard| {
                    let mut sxx = vec![0.0; d];
                    let mut sxy = Matrix::zeros(d, d);
                    let mut dev = vec![0.0; d];
                    for row in shard.rows_iter() {
                        for ((dv, v), m) in dev.iter_mut().zip(row).zip(&means) {
                            *dv = v - m;
                        }
                        for i in 0..d {
                            let di = dev[i];
                            sxx[i] += di * di;
                            for j in (i + 1)..d {
                                sxy[(i, j)] += di * dev[j];
                            }
                        }
                    }
                    (sxx, sxy)
                })
            });
            let mut moments: Option<(Vec<f64>, Matrix)> = None;
            for partial in moment_partials {
                let partial = partial?;
                match &mut moments {
                    None => moments = Some(partial),
                    Some((tsxx, tsxy)) => {
                        for (a, b) in tsxx.iter_mut().zip(&partial.0) {
                            *a += b;
                        }
                        for i in 0..d {
                            for j in (i + 1)..d {
                                tsxy[(i, j)] += partial.1[(i, j)];
                            }
                        }
                    }
                }
            }
            let (sxx, sxy) = moments.unwrap_or_else(|| (vec![0.0; d], Matrix::zeros(d, d)));
            let mut m = Matrix::zeros(d, d);
            for i in 0..d {
                m[(i, i)] = 1.0;
                for j in (i + 1)..d {
                    let r = if sxx[i] <= f64::EPSILON || sxx[j] <= f64::EPSILON {
                        0.0
                    } else {
                        sxy[(i, j)] / (sxx[i].sqrt() * sxx[j].sqrt())
                    };
                    m[(i, j)] = r;
                    m[(j, i)] = r;
                }
            }
            Ok(m)
        }
        CorrelationMethod::Spearman => {
            let mut m = Matrix::zeros(d, d);
            for i in 0..d {
                m[(i, i)] = 1.0;
                let col_i = gather_column(data, i)?;
                for j in (i + 1)..d {
                    let col_j = gather_column(data, j)?;
                    let r = spearman(&col_i, &col_j)?;
                    m[(i, j)] = r;
                    m[(j, i)] = r;
                }
            }
            Ok(m)
        }
    }
}

/// Greedy correlation pruning of the database's metric columns.
///
/// Metrics are visited in schema order (the schema lists "primary" metrics
/// before derived ones within each family, so primaries win ties). A metric
/// is dropped if its |correlation| with any already-kept metric is at least
/// `threshold`; otherwise it is kept.
///
/// # Errors
///
/// - [`MetricsError::InvalidParameter`] if `threshold` is not in `(0, 1]`.
/// - [`MetricsError::EmptyDatabase`] if `db` has no rows.
///
/// # Examples
///
/// ```
/// use flare_metrics::correlation::refine;
/// use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
/// use flare_metrics::schema::MetricSchema;
///
/// let schema = MetricSchema::canonical().subset(&[0, 1, 2]);
/// let mut db = MetricDatabase::new(schema);
/// for i in 0..10u32 {
///     let x = i as f64;
///     db.insert(ScenarioRecord {
///         id: ScenarioId(i),
///         // Column 1 duplicates column 0; column 2 is independent.
///         metrics: vec![x, 2.0 * x, (i % 3) as f64],
///         observations: 1,
///         job_mix: vec![],
///     })?;
/// }
/// let report = refine(&db, 0.95)?;
/// assert_eq!(report.kept_indices, vec![0, 2]);
/// # Ok::<(), flare_metrics::MetricsError>(())
/// ```
pub fn refine(db: &MetricDatabase, threshold: f64) -> Result<RefinementReport> {
    refine_with(db, threshold, CorrelationMethod::Pearson)
}

/// [`refine`] with an explicit correlation coefficient.
///
/// # Errors
///
/// Same as [`refine`].
pub fn refine_with(
    db: &MetricDatabase,
    threshold: f64,
    method: CorrelationMethod,
) -> Result<RefinementReport> {
    refine_with_threaded(db, threshold, method, Some(1))
}

/// [`refine_with`] with the correlation passes fanned out across
/// `threads` workers via [`correlation_matrix_sharded_threaded`]. The
/// report is bit-identical for every thread count.
///
/// # Errors
///
/// Same as [`refine`].
pub fn refine_with_threaded(
    db: &MetricDatabase,
    threshold: f64,
    method: CorrelationMethod,
    threads: Option<usize>,
) -> Result<RefinementReport> {
    if !(threshold > 0.0 && threshold <= 1.0) {
        return Err(MetricsError::InvalidParameter(format!(
            "correlation threshold {threshold} outside (0, 1]"
        )));
    }
    if db.len() == 0 {
        return Err(MetricsError::EmptyDatabase);
    }
    let corr = correlation_matrix_sharded_threaded(db.data_shards(), method, threads)?;
    let d = db.schema().len();

    let mut kept_indices: Vec<usize> = Vec::new();
    let mut dropped = Vec::new();
    for j in 0..d {
        let mut subsumed_by: Option<(usize, f64)> = None;
        for &k in &kept_indices {
            let r = corr[(k, j)];
            if r.abs() >= threshold {
                subsumed_by = Some((k, r));
                break;
            }
        }
        match subsumed_by {
            Some((k, r)) => dropped.push(DroppedMetric {
                dropped: db.schema().id_at(j),
                kept: db.schema().id_at(k),
                correlation: r,
            }),
            None => kept_indices.push(j),
        }
    }

    Ok(RefinementReport {
        kept_indices,
        dropped,
        threshold,
    })
}

/// Applies a refinement report, returning the narrowed database.
///
/// # Errors
///
/// Propagates projection errors if the report does not match the database.
pub fn apply_refinement(db: &MetricDatabase, report: &RefinementReport) -> Result<MetricDatabase> {
    db.project(&report.kept_indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{ScenarioId, ScenarioRecord};
    use crate::schema::MetricSchema;

    /// 5-column corpus: col1 = 3*col0 (dup), col3 = -col2 (dup),
    /// col4 independent.
    fn synthetic_db() -> MetricDatabase {
        let schema = MetricSchema::canonical().subset(&[0, 1, 2, 3, 4]);
        let mut db = MetricDatabase::new(schema);
        for i in 0..30u32 {
            let x = (i as f64 * 0.7).sin() * 10.0;
            let y = (i as f64 * 1.3).cos() * 5.0;
            let z = ((i * 37) % 11) as f64;
            db.insert(ScenarioRecord {
                id: ScenarioId(i),
                metrics: vec![x, 3.0 * x, y, -y, z],
                observations: 1,
                job_mix: vec![],
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn refine_drops_exact_duplicates() {
        let db = synthetic_db();
        let report = refine(&db, 0.95).unwrap();
        assert_eq!(report.kept_indices, vec![0, 2, 4]);
        assert_eq!(report.dropped_count(), 2);
        // Dropped metrics name their subsumer.
        let d0 = &report.dropped[0];
        assert_eq!(d0.kept, db.schema().id_at(0));
        assert!((d0.correlation.abs() - 1.0).abs() < 1e-9);
        let d1 = &report.dropped[1];
        assert_eq!(d1.kept, db.schema().id_at(2));
        assert!(
            d1.correlation < -0.99,
            "anti-correlation {}",
            d1.correlation
        );
    }

    #[test]
    fn threshold_one_keeps_near_duplicates() {
        // |r| must be >= 1.0 to drop; sin/cos noise keeps everything.
        let db = synthetic_db();
        let report = refine(&db, 1.0).unwrap();
        // Exact duplicates still hit |r| == 1.
        assert!(report.kept_count() >= 3);
    }

    #[test]
    fn refine_validates_threshold() {
        let db = synthetic_db();
        assert!(refine(&db, 0.0).is_err());
        assert!(refine(&db, 1.5).is_err());
    }

    #[test]
    fn refine_empty_db_errors() {
        let db = MetricDatabase::new(MetricSchema::canonical().subset(&[0]));
        assert!(matches!(refine(&db, 0.9), Err(MetricsError::EmptyDatabase)));
    }

    #[test]
    fn apply_refinement_projects() {
        let db = synthetic_db();
        let report = refine(&db, 0.95).unwrap();
        let refined = apply_refinement(&db, &report).unwrap();
        assert_eq!(refined.schema().len(), 3);
        assert_eq!(refined.len(), db.len());
    }

    #[test]
    fn correlation_matrix_properties() {
        let db = synthetic_db();
        let data = db.to_matrix().unwrap();
        let c = correlation_matrix(&data).unwrap();
        assert_eq!(c.shape(), (5, 5));
        for i in 0..5 {
            assert!((c[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!(c[(i, j)].abs() <= 1.0 + 1e-9);
                assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-12);
            }
        }
        // The planted duplicate pair.
        assert!((c[(0, 1)] - 1.0).abs() < 1e-9);
        assert!((c[(2, 3)] + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_refinement_catches_monotone_duplicates() {
        // col1 = exp(col0): nonlinear but perfectly monotone. Pearson at a
        // high threshold keeps both; Spearman prunes the duplicate.
        let schema = MetricSchema::canonical().subset(&[0, 1, 2]);
        let mut db = MetricDatabase::new(schema);
        for i in 0..25u32 {
            let x = i as f64 * 0.3;
            db.insert(ScenarioRecord {
                id: ScenarioId(i),
                metrics: vec![x, x.exp(), ((i * 29) % 13) as f64],
                observations: 1,
                job_mix: vec![],
            })
            .unwrap();
        }
        let pearson_report = refine_with(&db, 0.995, CorrelationMethod::Pearson).unwrap();
        let spearman_report = refine_with(&db, 0.995, CorrelationMethod::Spearman).unwrap();
        assert_eq!(
            pearson_report.kept_count(),
            3,
            "exp() escapes Pearson at 0.995"
        );
        assert_eq!(
            spearman_report.kept_count(),
            2,
            "Spearman sees the monotone dup"
        );
    }

    fn sharded_db(shard_rows: usize) -> MetricDatabase {
        let schema = MetricSchema::canonical().subset(&[0, 1, 2, 3, 4]);
        let mut db = MetricDatabase::with_shard_rows(schema, shard_rows);
        for i in 0..30u32 {
            let x = (i as f64 * 0.7).sin() * 10.0;
            let y = (i as f64 * 1.3).cos() * 5.0;
            let z = ((i * 37) % 11) as f64;
            db.insert(ScenarioRecord {
                id: ScenarioId(i),
                metrics: vec![x, 3.0 * x, y, -y, z],
                observations: 1,
                job_mix: vec![],
            })
            .unwrap();
        }
        db
    }

    #[test]
    fn sharded_correlation_single_shard_is_bit_identical_to_dense() {
        // With one shard the two-level fold has a single partial, so the
        // streamed coefficients must match the dense oracle to the bit
        // for both methods (Spearman matches for *every* layout — it
        // gathers whole columns).
        for &shard_rows in &[30usize, 31, 8192] {
            let db = sharded_db(shard_rows);
            for method in [CorrelationMethod::Pearson, CorrelationMethod::Spearman] {
                let dense = correlation_matrix_with(db.to_matrix().unwrap(), method).unwrap();
                let streamed = correlation_matrix_sharded(db.data_shards(), method).unwrap();
                assert_eq!(dense.shape(), streamed.shape());
                for i in 0..5 {
                    for j in 0..5 {
                        assert_eq!(
                            dense[(i, j)].to_bits(),
                            streamed[(i, j)].to_bits(),
                            "({i},{j}) {method:?} shard_rows {shard_rows}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_correlation_multi_shard_matches_dense_to_rounding() {
        // Multi-shard Pearson reassociates sums at shard boundaries (the
        // per-shard partial combine), so it matches the dense oracle to
        // rounding, not to the bit. Spearman stays bitwise.
        for &shard_rows in &[1usize, 3, 7, 29] {
            let db = sharded_db(shard_rows);
            let dense =
                correlation_matrix_with(db.to_matrix().unwrap(), CorrelationMethod::Pearson)
                    .unwrap();
            let streamed =
                correlation_matrix_sharded(db.data_shards(), CorrelationMethod::Pearson).unwrap();
            for i in 0..5 {
                for j in 0..5 {
                    assert!(
                        (dense[(i, j)] - streamed[(i, j)]).abs() < 1e-12,
                        "({i},{j}) shard_rows {shard_rows}: {} vs {}",
                        dense[(i, j)],
                        streamed[(i, j)]
                    );
                }
            }
            let dense_sp =
                correlation_matrix_with(db.to_matrix().unwrap(), CorrelationMethod::Spearman)
                    .unwrap();
            let streamed_sp =
                correlation_matrix_sharded(db.data_shards(), CorrelationMethod::Spearman).unwrap();
            for i in 0..5 {
                for j in 0..5 {
                    assert_eq!(
                        dense_sp[(i, j)].to_bits(),
                        streamed_sp[(i, j)].to_bits(),
                        "spearman ({i},{j}) shard_rows {shard_rows}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_correlation_is_bit_identical_across_thread_counts() {
        // The shard-order combine makes the result independent of which
        // worker folded which shard: every thread count reproduces the
        // serial (Some(1)) bits exactly.
        for &shard_rows in &[3usize, 7, 30] {
            let db = sharded_db(shard_rows);
            for method in [CorrelationMethod::Pearson, CorrelationMethod::Spearman] {
                let reference =
                    correlation_matrix_sharded_threaded(db.data_shards(), method, Some(1)).unwrap();
                for threads in [Some(2), Some(3), Some(8), None] {
                    let par =
                        correlation_matrix_sharded_threaded(db.data_shards(), method, threads)
                            .unwrap();
                    for i in 0..5 {
                        for j in 0..5 {
                            assert_eq!(
                                reference[(i, j)].to_bits(),
                                par[(i, j)].to_bits(),
                                "({i},{j}) {method:?} shard_rows {shard_rows} threads {threads:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_correlation_empty_matches_dense_errors() {
        // d ≥ 2 with no rows: the dense oracle errors on the first pair.
        let schema = MetricSchema::canonical().subset(&[0, 1]);
        let db = MetricDatabase::new(schema);
        for method in [CorrelationMethod::Pearson, CorrelationMethod::Spearman] {
            assert!(correlation_matrix_sharded(db.data_shards(), method).is_err());
        }
        // A single column never forms a pair: identity matrix, like dense.
        let one = MetricDatabase::new(MetricSchema::canonical().subset(&[0]));
        let m = correlation_matrix_sharded(one.data_shards(), CorrelationMethod::Pearson).unwrap();
        assert_eq!(m.shape(), (1, 1));
        assert_eq!(m[(0, 0)], 1.0);
    }

    #[test]
    fn kept_indices_are_sorted_unique() {
        let db = synthetic_db();
        let report = refine(&db, 0.9).unwrap();
        let mut sorted = report.kept_indices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, report.kept_indices);
    }
}
