//! Ablation 7: estimation error vs representative count — reproduces the
//! §5.4 observation that "increasing the number of clusters does not
//! improve the estimation quality, unless the number becomes very large",
//! which is why FLARE's cost can be treated as fixed in Fig. 13.

use flare_baselines::fulldc::full_datacenter_impact;
use flare_bench::banner;
use flare_cluster::kmeans::KMeansConfig;
use flare_core::replayer::SimTestbed;
use flare_core::{ClusterCountRule, Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    banner(
        "Ablation: estimation error vs number of representatives",
        "§5.4 ('more clusters do not improve quality until very large')",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();

    let truths: Vec<f64> = Feature::paper_features()
        .iter()
        .map(|f| {
            full_datacenter_impact(&corpus, &SimTestbed, &baseline, &f.apply(&baseline), true)
                .impact_pct
        })
        .collect();

    println!("\n  {:>4} {:>8} | error vs ground truth (pp)", "k", "cost");
    println!(
        "  {:>4} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "", "", "F1", "F2", "F3", "mean"
    );
    for k in [4, 9, 18, 36, 72, 144, 288] {
        let flare = Flare::fit(
            corpus.clone(),
            FlareConfig {
                cluster_count: ClusterCountRule::Fixed(k),
                kmeans: KMeansConfig::new(k).with_restarts(8),
                ..FlareConfig::default()
            },
        )
        .expect("fit");
        let mut errs = Vec::new();
        let mut cost = 0;
        for (feature, &truth) in Feature::paper_features().iter().zip(&truths) {
            let est = flare.evaluate(feature).expect("estimate");
            errs.push((est.impact_pct - truth).abs());
            cost = cost.max(est.replay_count);
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(
            "  {:>4} {:>8} | {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            k, cost, errs[0], errs[1], errs[2], mean
        );
    }
    println!(
        "\ntakeaway: past ~18 representatives the error plateaus (the corpus's behaviour\n\
         diversity is already covered); only at near-census scale does it vanish. FLARE's\n\
         evaluation cost is therefore effectively fixed — the premise of Fig. 13."
    );
}
