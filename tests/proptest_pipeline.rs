//! Property-based tests of cross-crate invariants: the interference model
//! and estimation pipeline must hold physical and statistical invariants
//! for arbitrary scenarios, not just the corpus the paper studies.

use flare::prelude::*;
use flare::sim::interference::evaluate;
use flare::sim::profiler::synthesize;
use flare_metrics::schema::MetricSchema;
use proptest::prelude::*;

/// Strategy: an arbitrary schedulable scenario on the default shape
/// (1..=12 containers drawn from all 14 job types).
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    prop::collection::vec(0usize..JobName::ALL.len(), 1..=12).prop_map(|picks| {
        let instances: Vec<JobInstance> = picks
            .into_iter()
            .map(|i| JobInstance::new(JobName::ALL[i]))
            .collect();
        Scenario::from_instances(&instances)
    })
}

fn baseline() -> MachineConfig {
    MachineShape::default_shape().baseline_config()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalized_perf_is_in_unit_interval(scenario in scenario_strategy()) {
        let perf = evaluate(&scenario, &baseline());
        for o in &perf.instances {
            prop_assert!(o.normalized_perf > 0.0);
            prop_assert!(o.normalized_perf <= 1.0 + 1e-9);
            prop_assert!(o.mips.is_finite());
        }
    }

    #[test]
    fn llc_shares_never_exceed_capacity(scenario in scenario_strategy()) {
        let config = baseline();
        let perf = evaluate(&scenario, &config);
        let total: f64 = perf.instances.iter().map(|o| o.llc_share_mb).sum();
        prop_assert!(total <= config.total_llc_mb() + 1e-6);
    }

    #[test]
    fn capability_reducing_features_never_speed_up_hp(scenario in scenario_strategy()) {
        prop_assume!(scenario.has_hp_job());
        let b = baseline();
        let before = evaluate(&scenario, &b).hp_normalized_perf().unwrap();
        // Features 1 and 2 strictly remove capability: never a speed-up.
        for feature in [Feature::paper_feature1(), Feature::paper_feature2()] {
            let after = evaluate(&scenario, &feature.apply(&b))
                .hp_normalized_perf()
                .unwrap();
            prop_assert!(
                after <= before + 1e-9,
                "{feature}: perf rose {before} -> {after} for {scenario:?}"
            );
        }
        // SMT off can *legitimately* help (it trades sibling interference
        // for timeslicing and relieves DRAM pressure — well documented on
        // real hardware for memory-thrashing colocations) — but any gain
        // is bounded, and under light load (no pairing) the configs
        // behave identically.
        let smt_off = Feature::paper_feature3().apply(&b);
        let after = evaluate(&scenario, &smt_off).hp_normalized_perf().unwrap();
        prop_assert!(
            after <= before * 1.20 + 1e-9,
            "SMT off gained >20%: {before} -> {after} for {scenario:?}"
        );
        let cores = b.shape.total_cores() as f64;
        let active = evaluate(&scenario, &b).active_vcpus;
        if active <= cores {
            prop_assert!((after - before).abs() < 1e-9,
                "light load must be SMT-insensitive: {before} vs {after}");
        }
    }

    #[test]
    fn deeper_cache_cuts_hurt_monotonically(scenario in scenario_strategy()) {
        prop_assume!(scenario.has_hp_job());
        let b = baseline();
        let mut prev = f64::INFINITY;
        for llc in [30.0, 20.0, 12.0, 6.0] {
            let cfg = Feature::CacheSizing { llc_mb_per_socket: llc }.apply(&b);
            let perf = evaluate(&scenario, &cfg).hp_normalized_perf().unwrap();
            prop_assert!(perf <= prev + 1e-9, "perf not monotone in LLC size");
            prev = perf;
        }
    }

    #[test]
    fn frequency_caps_hurt_monotonically(scenario in scenario_strategy()) {
        prop_assume!(scenario.has_hp_job());
        let b = baseline();
        let mut prev = f64::INFINITY;
        for fmax in [2.9, 2.4, 1.9, 1.4] {
            let cfg = Feature::DvfsCap { freq_max_ghz: fmax }.apply(&b);
            let perf = evaluate(&scenario, &cfg).hp_normalized_perf().unwrap();
            prop_assert!(perf <= prev + 1e-9, "perf not monotone in f_max");
            prev = perf;
        }
    }

    #[test]
    fn profiler_vectors_always_fit_canonical_schema(
        scenario in scenario_strategy(),
        seed in 0u64..1_000,
    ) {
        let config = baseline();
        let perf = evaluate(&scenario, &config);
        let v = synthesize(&scenario, &perf, &config, seed);
        prop_assert_eq!(v.len(), MetricSchema::canonical().len());
        prop_assert!(v.iter().all(|x| x.is_finite() && *x >= 0.0));
    }

    #[test]
    fn adding_a_neighbor_never_helps(
        scenario in scenario_strategy(),
        extra in 0usize..JobName::ALL.len(),
    ) {
        prop_assume!(scenario.has_hp_job());
        prop_assume!(scenario.total_instances() < 12);
        let b = baseline();
        let mut counts: Vec<(JobName, u32)> = scenario.iter().collect();
        counts.push((JobName::ALL[extra], 1));
        let bigger = Scenario::from_counts(counts);
        // Compare per HP job type so the added instance doesn't reweight
        // the average.
        let before_perf = evaluate(&scenario, &b);
        let after_perf = evaluate(&bigger, &b);
        for (job, _) in scenario
            .iter()
            .filter(|(j, _)| JobName::HIGH_PRIORITY.contains(j))
        {
            let before = before_perf.job_normalized_perf(job).unwrap();
            let after = after_perf.job_normalized_perf(job).unwrap();
            prop_assert!(
                after <= before + 1e-9,
                "adding a container sped {job} up: {before} -> {after}"
            );
        }
    }
}
