//! Fig. 7: cumulative explained variance vs number of principal
//! components; the Analyzer keeps enough PCs to reach 95 %.

use flare_bench::{banner, bar, ExperimentContext};

fn main() {
    banner(
        "Explained variance vs number of principal components",
        "Fig. 7",
    );
    let ctx = ExperimentContext::standard();
    let analyzer = ctx.flare.analyzer();
    let pca = analyzer.pca();
    let cum = pca.cumulative_explained_variance();

    println!(
        "\nrefined metrics entering PCA: {}",
        analyzer.refined_schema().len()
    );
    println!("PCs kept at the 95% target:  {}\n", analyzer.n_pcs());
    println!("  {:>4} {:>10} {:>12}", "PCs", "this PC %", "cumulative %");
    for (i, &c) in cum.iter().enumerate().take(analyzer.n_pcs() + 4) {
        let ratio = pca.explained_variance_ratio()[i];
        let marker = if i + 1 == analyzer.n_pcs() {
            "  <-- selected"
        } else {
            ""
        };
        println!(
            "  {:>4} {:>10.2} {:>12.2} |{}|{marker}",
            i + 1,
            ratio * 100.0,
            c * 100.0,
            bar(c, 1.0, 40),
        );
    }
}
