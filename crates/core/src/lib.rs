//! # flare-core
//!
//! FLARE: **F**ast, **L**ightweight, and **A**ccurate performance
//! evaluation using **RE**presentative datacenter behaviors — a
//! from-scratch Rust reproduction of the Middleware '23 paper.
//!
//! FLARE extracts a small set of representative job-colocation scenarios
//! from a datacenter's profiling data and replays only those on a testbed
//! to evaluate new features, with overheads ~50× below full-datacenter
//! evaluation at ~1 % error. The pipeline (paper Fig. 4):
//!
//! 1. **Data collection & refinement** — 100+ raw metrics per scenario,
//!    two-level (machine / HP-jobs); correlation pruning
//!    ([`flare_metrics::correlation`]).
//! 2. **High-level metric construction** — z-score + PCA, keep PCs up to a
//!    variance target, label them ([`interpret`]).
//! 3. **Grouping & representative extraction** — whiten, K-means, nearest
//!    scenario to each centroid ([`analyzer`]).
//! 4. **Feature estimation** — replay representatives under baseline and
//!    feature, weight impacts by group size ([`replayer`], [`estimate`]).
//!
//! ## Example
//!
//! ```
//! use flare_core::{Flare, FlareConfig, ClusterCountRule};
//! use flare_sim::datacenter::{Corpus, CorpusConfig};
//! use flare_sim::feature::Feature;
//!
//! // Collect a (small, for the doctest) scenario corpus.
//! let corpus = Corpus::generate(&CorpusConfig {
//!     machines: 4,
//!     days: 1.0,
//!     ..CorpusConfig::default()
//! });
//! // Fit FLARE and evaluate the paper's cache-sizing feature.
//! let flare = Flare::fit(corpus, FlareConfig {
//!     cluster_count: ClusterCountRule::Fixed(6),
//!     ..FlareConfig::default()
//! })?;
//! let estimate = flare.evaluate(&Feature::paper_feature1())?;
//! assert!(estimate.impact_pct >= 0.0);
//! # Ok::<(), flare_core::FlareError>(())
//! ```

#![warn(missing_docs)]

pub mod analyzer;
mod config;
pub mod diagnostics;
mod error;
pub mod estimate;
pub mod interpret;
mod pipeline;
pub mod replayer;
pub mod report;
pub mod stages;
pub mod stream;

pub use config::{
    ClusterCountRule, ClusterMethod, ClusterStageConfig, FeaturizeConfig, FlareConfig,
    ProfileConfig, RepairConfig, RepresentativeRule, RepresentativesConfig,
};
pub use error::{FlareError, Result};
pub use pipeline::{Flare, FlareSnapshot, SNAPSHOT_VERSION};
pub use stages::{FitReport, StageFingerprints, StageOutcome};
pub use stream::{
    BatchDisposition, BatchOutcome, DriftReport, StreamConfig, StreamCursor, StreamSession,
};

/// Deterministic order-preserving parallel fan-out primitives shared by
/// the profiling, clustering, and evaluation stages.
pub use flare_exec as exec;
