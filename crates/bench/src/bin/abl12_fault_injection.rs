//! Ablation 12: end-to-end telemetry fault injection — how does the full
//! Profiler→Analyzer→Replayer pipeline degrade when the *collection* side
//! fails like production telemetry does (dropped samples, stuck sensors,
//! outlier spikes, lost and duplicated records) while the testbed itself
//! is flaky?
//!
//! Each sweep point corrupts the clean metric database with a composite
//! fault plan scaled by `rate`, pushes it through quarantine-tolerant
//! ingestion, fits the hardened Analyzer (median imputation + MAD
//! winsorization + robust normalization), and estimates every paper
//! feature on a flaky testbed under the bounded-retry policy. Ground
//! truth stays clean, so the error column isolates what degraded
//! telemetry costs the estimate.
//!
//! Run with `--smoke` for the two-point CI variant on a small corpus.

use flare_baselines::fulldc::full_datacenter_impact;
use flare_bench::banner;
use flare_core::analyzer::Analyzer;
use flare_core::estimate::{estimate_all_job_with, EstimateOptions};
use flare_core::replayer::{FlakyTestbed, RetryPolicy, SimTestbed};
use flare_core::{ClusterCountRule, FlareConfig};
use flare_metrics::database::IngestPolicy;
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::faults::{FaultInjector, FaultPlan};
use flare_sim::feature::Feature;

/// The composite fault plan of one sweep point: dropout dominates, the
/// record-level and spike channels ride along at a fraction of the rate.
fn plan_for(rate: f64, seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        sample_dropout: rate,
        stuck_sensor: rate * 0.2,
        outlier_spike: rate * 0.1,
        record_loss: rate * 0.1,
        record_duplication: rate * 0.1,
        ..FaultPlan::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: end-to-end robustness under injected telemetry faults",
        "fault model + degraded-data hardening (dropout / stuck / spikes / loss / dups)",
    );

    let corpus_cfg = if smoke {
        CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        }
    } else {
        CorpusConfig::default()
    };
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();
    let clean_db = corpus.to_metric_database(&baseline);
    let config = FlareConfig {
        cluster_count: if smoke {
            ClusterCountRule::Fixed(8)
        } else {
            FlareConfig::default().cluster_count
        },
        robust_normalization: true,
        winsorize_mad: Some(8.0),
        ..FlareConfig::default()
    };
    let features = Feature::paper_features();
    let truths: Vec<f64> = features
        .iter()
        .map(|f| {
            let fc = f.apply(&baseline);
            full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct
        })
        .collect();

    let rates: &[f64] = if smoke {
        &[0.0, 0.10]
    } else {
        &[0.0, 0.05, 0.10, 0.20, 0.35, 0.50]
    };
    println!(
        "\n  {:>5} | {:>6} {:>7} {:>7} {:>7} | {:>8} {:>9}",
        "rate", "quar", "missing", "imputed", "winsor", "coverage", "mean |err|"
    );
    for &rate in rates {
        let (db, ingest) = if rate == 0.0 {
            (clean_db.clone(), Default::default())
        } else {
            let injector = FaultInjector::new(plan_for(rate, 0xFA017)).expect("valid plan");
            injector.corrupt_database(&clean_db, &IngestPolicy::default())
        };
        let analyzer = Analyzer::fit(&db, &config).expect("fit survives corrupted telemetry");
        let repair = analyzer.repair_report();

        // The replay side fails too: transient faults at 30% of the rate
        // (beatable by retry), permanent at 5% (cluster fallback/drop).
        let testbed = FlakyTestbed::new(
            SimTestbed,
            rate * 0.3,
            rate * 0.05,
            0xFA017 ^ (rate * 1000.0) as u64,
        );
        let options = EstimateOptions {
            weight_by_observations: true,
            retry: RetryPolicy {
                max_retries: 4,
                ..RetryPolicy::default()
            },
            min_coverage: 0.25,
        };
        let mut errs = Vec::new();
        let mut min_coverage_seen = 1.0f64;
        let mut failures = 0usize;
        for (feature, &truth) in features.iter().zip(&truths) {
            let fc = feature.apply(&baseline);
            match estimate_all_job_with(&corpus, &analyzer, &testbed, &baseline, &fc, &options) {
                Ok(est) => {
                    assert!(est.impact_pct.is_finite(), "non-finite estimate at {rate}");
                    errs.push((est.impact_pct - truth).abs());
                    min_coverage_seen = min_coverage_seen.min(est.coverage);
                }
                Err(e) => {
                    failures += 1;
                    eprintln!("  rate {rate}: {feature}: {e}");
                }
            }
        }
        let mean_err = if errs.is_empty() {
            f64::NAN
        } else {
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        println!(
            "  {:>4.0}% | {:>6} {:>7} {:>7} {:>7} | {:>8.2} {:>9.2}{}",
            rate * 100.0,
            ingest.quarantined_count(),
            ingest.missing_cells,
            repair.imputed_cells,
            repair.winsorized_cells,
            min_coverage_seen,
            mean_err,
            if failures > 0 {
                format!("  ({failures} feature(s) below coverage floor)")
            } else {
                String::new()
            }
        );
        if rate == 0.0 {
            // Winsorization may legitimately clamp genuine heavy tails of
            // a clean corpus, but nothing should be quarantined or imputed.
            assert!(
                ingest.is_clean() && repair.imputed_cells == 0,
                "clean sweep point must need no quarantine or imputation"
            );
        }
    }
    println!(
        "\ntakeaway: quarantine-tolerant ingestion plus median/MAD repair keep the\n\
         estimate finite and close to truth through ~10-20% composite fault rates;\n\
         past that the coverage floor starts refusing estimates instead of letting\n\
         them silently drift."
    );
}
