//! Ablation 11: two "obvious improvements" put to the test —
//!
//! (a) representative selection: nearest-to-centroid (the paper's rule)
//!     vs the cluster medoid;
//! (b) a smarter sampling competitor: occupancy-stratified sampling
//!     ("cover the load range"), the heuristic a practitioner might try
//!     before adopting FLARE.

use flare_baselines::fulldc::full_datacenter_impact;
use flare_baselines::sampling::{
    sampling_distribution, stratified_sampling_distribution, SamplingConfig,
};
use flare_bench::banner;
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    banner(
        "Ablation: representative selection rule + stratified-sampling baseline",
        "§4.4 design choice + a stronger baseline than the paper's sampling",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();

    // ---- (a) nearest-to-centroid vs medoid --------------------------
    println!("\n[a] representative-selection rule (error vs ground truth, pp):");
    println!(
        "  {:<20} {:>8} {:>8} {:>8} {:>8}",
        "rule", "F1", "F2", "F3", "mean"
    );
    for (name, rule) in [
        (
            "nearest-to-centroid",
            flare_core::RepresentativeRule::NearestToCentroid,
        ),
        ("medoid", flare_core::RepresentativeRule::Medoid),
    ] {
        let flare = Flare::fit(
            corpus.clone(),
            FlareConfig {
                representative_rule: rule,
                ..FlareConfig::default()
            },
        )
        .expect("fit");
        let mut errs = Vec::new();
        for feature in Feature::paper_features() {
            let fc = feature.apply(&baseline);
            let truth =
                full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
            errs.push((flare.evaluate(&feature).expect("estimate").impact_pct - truth).abs());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(
            "  {:<20} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            name, errs[0], errs[1], errs[2], mean
        );
    }

    // ---- (b) stratified vs uniform sampling ---------------------------
    println!(
        "\n[b] smarter sampling: occupancy-stratified vs uniform (18 scenarios, 1000 trials):"
    );
    println!(
        "  {:<22} {:>14} {:>14} | FLARE err",
        "feature", "uniform expmax", "stratified"
    );
    for feature in Feature::paper_features() {
        let fc = feature.apply(&baseline);
        let truth = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
        let cfg = SamplingConfig {
            n_samples: 18,
            trials: 1000,
            ..SamplingConfig::default()
        };
        let uniform = sampling_distribution(&corpus, &SimTestbed, &baseline, &fc, &cfg)
            .expect("population")
            .expected_max_error(truth);
        let strat = stratified_sampling_distribution(&corpus, &SimTestbed, &baseline, &fc, &cfg)
            .expect("population")
            .expected_max_error(truth);
        let flare_err = {
            let flare = Flare::fit(corpus.clone(), FlareConfig::default()).expect("fit");
            (flare.evaluate(&feature).expect("estimate").impact_pct - truth).abs()
        };
        println!(
            "  {:<22} {:>12.2}pp {:>12.2}pp | {:>7.2}pp",
            feature.label(),
            uniform,
            strat,
            flare_err
        );
    }
    println!(
        "\ntakeaway: (a) both selection rules are competitive — the paper's simpler\n\
         nearest-to-centroid rule needs no pairwise distances; (b) stratifying by\n\
         occupancy helps sampling but a single load axis cannot capture the\n\
         multi-dimensional behaviour space — FLARE's PCA-space clustering still wins."
    );
}
