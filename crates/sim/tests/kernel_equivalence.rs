//! Property-based differential tests of the scenario-evaluation kernel
//! layer: for *arbitrary* schedulable scenarios the grouped scratch/table
//! kernels, the load-scaled kernel, and the content-addressed evaluation
//! cache must be **byte-identical** to the unbatched closure-based
//! reference solves they replaced — the kernels are wall-clock knobs,
//! never result knobs (DESIGN.md §9).

use flare_sim::feature::Feature;
use flare_sim::interference::{
    evaluate, evaluate_at_load, evaluate_at_load_naive, evaluate_with_profiles,
};
use flare_sim::kernel::{evaluate_catalog, perf_bits_equal, with_scratch, EvalCache};
use flare_sim::machine::MachineShape;
use flare_sim::scenario::Scenario;
use flare_workloads::catalog;
use flare_workloads::job::{JobInstance, JobName};
use proptest::prelude::*;

/// Strategy: an arbitrary scenario on the default shape (0..=12 containers
/// drawn from all 14 job types; 0 exercises the empty-machine edge where
/// the naive path's empty `Sum` folds yield `-0.0`).
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    prop::collection::vec(0usize..JobName::ALL.len(), 0..=12).prop_map(|picks| {
        let instances: Vec<JobInstance> = picks
            .into_iter()
            .map(|i| JobInstance::new(JobName::ALL[i]))
            .collect();
        Scenario::from_instances(&instances)
    })
}

/// Strategy: a machine configuration — the baseline of either paper shape,
/// optionally transformed by one of the three paper features.
fn config_strategy() -> impl Strategy<Value = flare_sim::machine::MachineConfig> {
    let shapes = prop_oneof![
        Just(MachineShape::default_shape()),
        Just(MachineShape::small_shape()),
    ];
    (shapes, 0usize..4).prop_map(|(shape, feature)| {
        let baseline = shape.baseline_config();
        match feature {
            1 => Feature::paper_feature1().apply(&baseline),
            2 => Feature::paper_feature2().apply(&baseline),
            3 => Feature::paper_feature3().apply(&baseline),
            _ => baseline,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kernel_solve_is_bit_identical_to_unbatched_reference(
        scenario in scenario_strategy(),
        config in config_strategy(),
    ) {
        let naive = evaluate_with_profiles(&scenario, &config, &catalog::profile);
        let kernel = evaluate(&scenario, &config);
        prop_assert!(
            perf_bits_equal(&naive, &kernel),
            "kernel diverged from unbatched solve for {scenario:?}"
        );
    }

    #[test]
    fn load_scaled_kernel_matches_naive_oracle(
        scenario in scenario_strategy(),
        config in config_strategy(),
        load in 0.0f64..2.0,
    ) {
        let naive = evaluate_at_load_naive(&scenario, &config, load);
        let kernel = evaluate_at_load(&scenario, &config, load);
        prop_assert!(
            perf_bits_equal(&naive, &kernel),
            "load-scaled kernel diverged at load={load} for {scenario:?}"
        );
    }

    #[test]
    fn cache_returns_the_direct_solve_bits(
        scenario in scenario_strategy(),
        config in config_strategy(),
    ) {
        let cache = EvalCache::new();
        let direct = evaluate(&scenario, &config);
        // Miss then hit: both lookups must return the direct solve's bits.
        for _ in 0..2 {
            let cached = with_scratch(|scratch| cache.evaluate(&scenario, &config, scratch));
            prop_assert!(
                perf_bits_equal(&direct, &cached),
                "cache diverged from direct solve for {scenario:?}"
            );
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits, 1);
        prop_assert_eq!(stats.misses, 1);
    }

    #[test]
    fn feature_ab_is_cache_transparent(scenario in scenario_strategy()) {
        // The A/B shape every replay runs: baseline and feature config of
        // the same scenario through one shared cache, checked against
        // fresh solves — feature attribution must be unaffected by reuse.
        let baseline = MachineShape::default_shape().baseline_config();
        let cache = EvalCache::new();
        for feature in [
            Feature::paper_feature1(),
            Feature::paper_feature2(),
            Feature::paper_feature3(),
        ] {
            let with = feature.apply(&baseline);
            for config in [&baseline, &with] {
                let direct = evaluate(&scenario, config);
                let cached =
                    with_scratch(|scratch| cache.evaluate(&scenario, config, scratch));
                prop_assert!(
                    perf_bits_equal(&direct, &cached),
                    "{feature}: cached A/B diverged for {scenario:?}"
                );
            }
        }
        // Baseline solved once, hit twice more; each feature config missed
        // once and hit once (feature 3 toggles SMT — a distinct config).
        let stats = cache.stats();
        prop_assert_eq!(stats.misses, 4);
        prop_assert_eq!(stats.hits, 2);
        prop_assert_eq!(stats.configs, 4);
    }

    #[test]
    fn scratch_reuse_carries_no_state_between_solves(
        first in scenario_strategy(),
        second in scenario_strategy(),
        config in config_strategy(),
    ) {
        // Solving `first` then `second` on one scratch must equal solving
        // `second` alone on a fresh scratch — leftover buffer contents and
        // capacities are invisible in the results.
        let fresh = with_scratch(|scratch| evaluate_catalog(&second, &config, scratch));
        let mut scratch = flare_sim::kernel::EvalScratch::new();
        let _ = evaluate_catalog(&first, &config, &mut scratch);
        let reused = evaluate_catalog(&second, &config, &mut scratch);
        prop_assert!(
            perf_bits_equal(&fresh, &reused),
            "scratch reuse leaked state from {first:?} into {second:?}"
        );
    }
}
