//! Ablation 14: the exact-pruned k-means kernel layer — what do flat
//! centroid storage, norm-bound pruning, warm-started assignment, the
//! scratch arena, and the shared pairwise-distance cache buy on the
//! Analyzer hot path (§4.4, Fig. 9)?
//!
//! Two measurements at paper scale (n ≈ 1000 whitened scenarios, d ≈ 8
//! retained PCs), naive reference vs kernel path:
//!
//! 1. **Single clustering** — `kmeans_naive` vs `kmeans` at k ∈ {5, 10, 20},
//!    both restricted to one worker so the comparison isolates the
//!    algorithmic gains from thread-count luck.
//! 2. **Full cluster-count sweep** — the per-candidate composition
//!    (`kmeans_naive` + uncached `silhouette_score` per k, the pre-kernel
//!    sweep procedure) vs `sweep_kmeans` over k = 2..=20.
//!
//! Every kernel result is asserted **byte-identical** to its naive
//! equivalent before any timing is reported, so the speedups compare equal
//! outputs. Timings are medians over repeated runs and land in
//! `results/BENCH_cluster.json` (machine-readable). `--smoke` runs the
//! small CI variant and asserts the sweep speedup gate (>= 2x).

use flare_bench::banner;
use flare_cluster::kmeans::{kmeans, kmeans_naive, KMeansConfig, KMeansResult};
use flare_cluster::quality::silhouette_score;
use flare_cluster::sweep::{sweep_kmeans, SweepPoint, SweepResult};
use flare_linalg::Matrix;
use std::time::Instant;

/// Deterministic blob corpus mimicking the Analyzer's whitened PC
/// coordinates: `blobs` cluster centers at spread distances from the
/// origin (so the norm-bound prune has gaps to exploit, exactly like
/// whitened data whose leading PCs separate scenario groups radially).
fn corpus(n: usize, d: usize, blobs: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let b = i % blobs;
            let radius = 4.0 + 3.0 * b as f64;
            (0..d)
                .map(|j| {
                    let angle = b as f64 * 0.71 + j as f64 * 0.37;
                    let jitter = ((i * (j + 3)) as f64 * 0.193).sin() * 0.6;
                    radius * angle.cos() / (1.0 + j as f64 * 0.2) + jitter
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("rectangular corpus")
}

fn time_once<T>(f: &mut impl FnMut() -> T) -> (T, u128) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_nanos())
}

/// Times two equivalent computations head-to-head: one warmup each, then
/// `reps` strictly interleaved timed runs (A, B, A, B, …) so slow drift on
/// a shared machine hits both sides equally. Returns the last value of
/// each plus the median nanoseconds per side.
fn duel<T>(
    reps: usize,
    mut a: impl FnMut() -> T,
    mut b: impl FnMut() -> T,
) -> ((T, u128), (T, u128)) {
    let _ = std::hint::black_box(a());
    let _ = std::hint::black_box(b());
    let mut ta: Vec<u128> = Vec::with_capacity(reps);
    let mut tb: Vec<u128> = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (va, na) = time_once(&mut a);
        let (vb, nb) = time_once(&mut b);
        ta.push(na);
        tb.push(nb);
        last = Some((va, vb));
    }
    let (va, vb) = last.expect("reps >= 1");
    ta.sort_unstable();
    tb.sort_unstable();
    ((va, ta[ta.len() / 2]), (vb, tb[tb.len() / 2]))
}

fn assert_identical(naive: &KMeansResult, fast: &KMeansResult, label: &str) {
    assert_eq!(
        naive.assignments, fast.assignments,
        "{label}: assignments diverged"
    );
    assert_eq!(
        naive.sse.to_bits(),
        fast.sse.to_bits(),
        "{label}: SSE bits diverged"
    );
    assert_eq!(naive.iterations, fast.iterations, "{label}: iterations");
    for (a, b) in naive.centroids.iter().zip(&fast.centroids) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: centroid bits");
        }
    }
}

fn assert_sweeps_identical(naive: &SweepResult, fast: &SweepResult) {
    assert_eq!(naive.points.len(), fast.points.len(), "sweep lengths");
    for (a, b) in naive.points.iter().zip(&fast.points) {
        assert_eq!(a.k, b.k, "sweep k order");
        assert_eq!(a.sse.to_bits(), b.sse.to_bits(), "sweep SSE bits k={}", a.k);
        assert_eq!(
            a.silhouette.to_bits(),
            b.silhouette.to_bits(),
            "sweep silhouette bits k={}",
            a.k
        );
    }
}

/// The pre-kernel sweep procedure: one serial naive K-means plus one
/// uncached silhouette per candidate count.
fn sweep_naive(data: &Matrix, ks: &[usize], base: &KMeansConfig) -> SweepResult {
    let points = ks
        .iter()
        .map(|&k| {
            let mut cfg = base.clone();
            cfg.k = k;
            cfg.threads = Some(1);
            let result = kmeans_naive(data, &cfg).expect("naive kmeans");
            let silhouette = silhouette_score(data, &result.assignments, k).expect("silhouette");
            SweepPoint {
                k,
                sse: result.sse,
                silhouette,
            }
        })
        .collect();
    SweepResult { points }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: exact-pruned k-means kernel layer",
        "Analyzer clustering hot path, §4.4 / Fig. 9",
    );

    let (n, d, reps, ks, restarts) = if smoke {
        (400, 16, 9, (2..=12).collect::<Vec<usize>>(), 6)
    } else {
        (1000, 8, 7, (2..=20).collect::<Vec<usize>>(), 8)
    };
    let data = corpus(n, d, 10);
    println!("\ncorpus: n={n} d={d} | restarts={restarts} | median of {reps} interleaved runs\n");

    // --- Single clustering: naive vs kernel, one worker each -------------
    println!(
        "  {:<18} | {:>12} | {:>12} | {:>8}",
        "shape", "naive", "kernel", "speedup"
    );
    let mut lloyd_rows = String::new();
    for k in [5, 10, 20] {
        let cfg = KMeansConfig::new(k)
            .with_restarts(restarts)
            .with_threads(Some(1));
        let ((naive, t_naive), (fast, t_fast)) = duel(
            reps,
            || kmeans_naive(&data, &cfg).expect("naive"),
            || kmeans(&data, &cfg).expect("kernel"),
        );
        assert_identical(&naive, &fast, &format!("k={k}"));
        let speedup = t_naive as f64 / t_fast as f64;
        println!(
            "  {:<18} | {:>10.2}ms | {:>10.2}ms | {:>7.2}x",
            format!("kmeans k={k}"),
            t_naive as f64 / 1e6,
            t_fast as f64 / 1e6,
            speedup
        );
        if !lloyd_rows.is_empty() {
            lloyd_rows.push_str(",\n");
        }
        lloyd_rows.push_str(&format!(
            "    {{\"k\": {k}, \"naive_ns\": {t_naive}, \"kernel_ns\": {t_fast}, \"speedup\": {speedup:.3}}}"
        ));
    }

    // --- Full sweep: pre-kernel composition vs sweep_kmeans --------------
    let base = KMeansConfig::new(2).with_restarts(restarts);
    let ((naive_sweep, t_naive_sweep), (fast_sweep, t_fast_sweep)) = duel(
        reps,
        || sweep_naive(&data, &ks, &base),
        || sweep_kmeans(&data, &ks, &base).expect("sweep"),
    );
    assert_sweeps_identical(&naive_sweep, &fast_sweep);
    let sweep_speedup = t_naive_sweep as f64 / t_fast_sweep as f64;
    println!(
        "  {:<18} | {:>10.2}ms | {:>10.2}ms | {:>7.2}x",
        format!("sweep k={}..={}", ks[0], ks[ks.len() - 1]),
        t_naive_sweep as f64 / 1e6,
        t_fast_sweep as f64 / 1e6,
        sweep_speedup
    );

    // --- Machine-readable results ----------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"abl14_cluster_kernels\",\n  \"mode\": \"{mode}\",\n  \
         \"config\": {{\"n\": {n}, \"d\": {d}, \"restarts\": {restarts}, \"reps\": {reps}, \
         \"ks\": [{k_min}, {k_max}]}},\n  \"kmeans\": [\n{lloyd_rows}\n  ],\n  \
         \"sweep\": {{\"naive_ns\": {t_naive_sweep}, \"kernel_ns\": {t_fast_sweep}, \
         \"speedup\": {sweep_speedup:.3}}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        k_min = ks[0],
        k_max = ks[ks.len() - 1],
    );
    let out = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_cluster.json"
    );
    std::fs::write(out, &json).expect("write BENCH_cluster.json");
    println!("\nwrote {out}");

    if smoke {
        assert!(
            sweep_speedup >= 2.0,
            "smoke gate: kernel sweep must be >= 2x the naive composition, got {sweep_speedup:.2}x"
        );
    }
    println!(
        "\ntakeaway: identical bits, less time — the flat/pruned/warm-started\n\
         kernels and the shared pairwise-distance cache accelerate the exact\n\
         Lloyd + sweep pipeline without perturbing a single output value."
    );
}
