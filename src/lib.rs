//! # flare
//!
//! A from-scratch Rust reproduction of **FLARE** — *Fast, Light-weight,
//! and Accurate Performance Evaluation using Representative Datacenter
//! Behaviors* (Lee et al., Middleware '23).
//!
//! FLARE answers one question cheaply and accurately: *what will this
//! feature (hardware change, software upgrade, configuration tweak) do to
//! my datacenter's performance?* Instead of evaluating on the live fleet
//! (accurate, prohibitively expensive) or with single-service load tests
//! (cheap, wildly inaccurate under colocation), FLARE:
//!
//! 1. profiles every job-colocation scenario with 100+ two-level metrics,
//! 2. prunes redundant metrics and builds interpretable PCA components,
//! 3. clusters scenarios and extracts one representative per group,
//! 4. replays only the representatives under the feature, weighting
//!    impacts by group size.
//!
//! This façade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the FLARE pipeline itself |
//! | [`sim`] | datacenter simulator substrate |
//! | [`workloads`] | HP/LP job catalog |
//! | [`metrics`] | metric schema + database |
//! | [`linalg`] | PCA / eigen / statistics |
//! | [`cluster`] | K-means / silhouette / hierarchical |
//! | [`baselines`] | sampling / load-testing / ground truth |
//!
//! ## Quickstart
//!
//! ```
//! use flare::prelude::*;
//!
//! // 1. Collect a scenario corpus from the (simulated) datacenter.
//! let corpus = Corpus::generate(&CorpusConfig {
//!     machines: 4,
//!     days: 1.0, // small for the doctest; default is 8 machines x 7 days
//!     ..CorpusConfig::default()
//! });
//!
//! // 2. Fit FLARE: refine -> PCA -> cluster -> representatives.
//! let flare = Flare::fit(corpus, FlareConfig {
//!     cluster_count: ClusterCountRule::Fixed(6),
//!     ..FlareConfig::default()
//! })?;
//!
//! // 3. Evaluate a feature by replaying only the representatives.
//! let estimate = flare.evaluate(&Feature::paper_feature2())?;
//! println!("estimated MIPS reduction: {:.1}%", estimate.impact_pct);
//! assert!(estimate.impact_pct > 0.0);
//! # Ok::<(), flare::core::FlareError>(())
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use flare_baselines as baselines;
pub use flare_cluster as cluster;
pub use flare_core as core;
pub use flare_linalg as linalg;
pub use flare_metrics as metrics;
pub use flare_sim as sim;
pub use flare_workloads as workloads;

/// The most common imports, bundled.
pub mod prelude {
    pub use flare_core::replayer::{CachedSimTestbed, SimTestbed, Testbed};
    pub use flare_core::{
        BatchDisposition, BatchOutcome, ClusterCountRule, DriftReport, FitReport, Flare,
        FlareConfig, FlareError, StageOutcome, StreamConfig, StreamCursor, StreamSession,
    };
    pub use flare_sim::datacenter::{Corpus, CorpusConfig};
    pub use flare_sim::feature::Feature;
    pub use flare_sim::machine::{MachineConfig, MachineShape};
    pub use flare_sim::scenario::Scenario;
    pub use flare_workloads::job::{JobInstance, JobName};
}
