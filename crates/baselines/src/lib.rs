//! # flare-baselines
//!
//! The evaluation baselines FLARE is compared against in §5:
//!
//! - [`fulldc`] — full-datacenter evaluation (the accurate, 50×-more
//!   expensive ground truth);
//! - [`sampling`] — random sampling of job-colocation scenarios with
//!   trial distributions (Fig. 12's violins, Fig. 13's curve);
//! - [`loadtest`] — conventional colocation-unaware load-testing (the
//!   Fig. 2 pitfall);
//! - [`cost`] — the evaluation-cost/accuracy trade-off (Fig. 13);
//! - [`canary`] — a WSMeter-style live canary cluster (the paper's \[58\]).

#![warn(missing_docs)]

pub mod canary;
pub mod cost;
pub mod fulldc;
pub mod loadtest;
pub mod sampling;
