//! The end-to-end FLARE façade: corpus → database → analyzer → replayer →
//! estimates, plus the §5.6 scheduler-change workflow.

use crate::analyzer::Analyzer;
use crate::config::FlareConfig;
use crate::error::Result;
use crate::estimate::{
    estimate_all_job_with, estimate_per_job_with, AllJobEstimate, EstimateOptions, PerJobEstimate,
};
use crate::replayer::{SimTestbed, Testbed};
use flare_metrics::database::{MetricDatabase, ScenarioRecord};
use flare_sim::datacenter::{Corpus, CorpusEntry};
use flare_sim::feature::Feature;
use flare_sim::machine::MachineConfig;
use flare_workloads::job::JobName;

/// A fitted FLARE instance: the representative scenarios of one datacenter
/// plus everything needed to evaluate features against them.
#[derive(Debug, Clone)]
pub struct Flare {
    corpus: Corpus,
    database: MetricDatabase,
    analyzer: Analyzer,
    config: FlareConfig,
    baseline: MachineConfig,
}

impl Flare {
    /// Runs FLARE steps 1–3 on a collected corpus: profile every scenario
    /// under the corpus's baseline machine configuration, refine, build
    /// high-level metrics, cluster, and extract representatives.
    ///
    /// # Errors
    ///
    /// Propagates analyzer errors (insufficient data, invalid config).
    pub fn fit(corpus: Corpus, config: FlareConfig) -> Result<Flare> {
        config
            .validate()
            .map_err(crate::FlareError::InvalidParameter)?;
        let baseline = corpus.config().machine_config.clone();
        let database = match config.temporal_phases {
            Some(phases) => corpus
                .to_metric_database_enriched_threaded(&baseline, phases, config.threads)
                .map_err(crate::FlareError::InvalidParameter)?,
            None => corpus.to_metric_database_threaded(&baseline, config.threads),
        };
        let analyzer = Analyzer::fit(&database, &config)?;
        Ok(Flare {
            corpus,
            database,
            analyzer,
            config,
            baseline,
        })
    }

    /// The scenario corpus FLARE was fitted on.
    pub fn corpus(&self) -> &Corpus {
        &self.corpus
    }

    /// The profiled metric database.
    pub fn database(&self) -> &MetricDatabase {
        &self.database
    }

    /// The fitted analyzer (refinement, PCA, clustering, representatives).
    pub fn analyzer(&self) -> &Analyzer {
        &self.analyzer
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &FlareConfig {
        &self.config
    }

    /// The baseline machine configuration measurements compare against.
    pub fn baseline(&self) -> &MachineConfig {
        &self.baseline
    }

    /// Number of representative scenarios (the evaluation cost unit).
    pub fn n_representatives(&self) -> usize {
        self.analyzer.representatives().len()
    }

    /// Estimates a feature's overall HP impact using the default simulator
    /// testbed (§4.5; Fig. 12a).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn evaluate(&self, feature: &Feature) -> Result<AllJobEstimate> {
        self.evaluate_on(&SimTestbed, feature)
    }

    /// Estimates a feature's overall HP impact on a caller-provided
    /// testbed.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors.
    pub fn evaluate_on<T: Testbed>(
        &self,
        testbed: &T,
        feature: &Feature,
    ) -> Result<AllJobEstimate> {
        let feature_config = feature.apply(&self.baseline);
        estimate_all_job_with(
            &self.corpus,
            &self.analyzer,
            testbed,
            &self.baseline,
            &feature_config,
            &self.estimate_options(),
        )
    }

    /// Estimator options derived from the pipeline config (weighting,
    /// retry policy, coverage floor).
    pub fn estimate_options(&self) -> EstimateOptions {
        EstimateOptions {
            weight_by_observations: self.config.weight_by_observations,
            retry: self.config.retry,
            min_coverage: self.config.min_replay_coverage,
        }
    }

    /// Estimates a feature's impact on one HP job (§5.3; Fig. 12b).
    ///
    /// # Errors
    ///
    /// Propagates estimation errors, including
    /// [`crate::FlareError::JobNotObserved`].
    pub fn evaluate_job(&self, job: JobName, feature: &Feature) -> Result<PerJobEstimate> {
        self.evaluate_job_on(&SimTestbed, job, feature)
    }

    /// Estimates a feature's impact on one HP job on a caller-provided
    /// testbed.
    ///
    /// # Errors
    ///
    /// Propagates estimation errors, including
    /// [`crate::FlareError::JobNotObserved`] and
    /// [`crate::FlareError::ReplayFailed`].
    pub fn evaluate_job_on<T: Testbed>(
        &self,
        testbed: &T,
        job: JobName,
        feature: &Feature,
    ) -> Result<PerJobEstimate> {
        let feature_config = feature.apply(&self.baseline);
        estimate_per_job_with(
            &self.corpus,
            &self.analyzer,
            testbed,
            job,
            &self.baseline,
            &feature_config,
            &self.estimate_options(),
        )
    }

    /// Captures the whole fitted instance (corpus, database, analyzer,
    /// config) as a serializable snapshot — the representative extraction
    /// is a one-time cost reused for every future feature evaluation, so
    /// persisting it is the normal workflow.
    pub fn to_snapshot(&self) -> FlareSnapshot {
        FlareSnapshot {
            corpus: self.corpus.clone(),
            database: self.database.clone(),
            analyzer: self.analyzer.to_snapshot(),
            config: self.config.clone(),
            baseline: self.baseline.clone(),
        }
    }

    /// Restores a fitted instance from a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-consistency errors.
    pub fn from_snapshot(snapshot: FlareSnapshot) -> Result<Flare> {
        let analyzer = Analyzer::from_snapshot(snapshot.analyzer)?;
        Ok(Flare {
            corpus: snapshot.corpus,
            database: snapshot.database,
            analyzer,
            config: snapshot.config,
            baseline: snapshot.baseline,
        })
    }

    /// Serializes the fitted instance to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlareError::InvalidParameter`] wrapping I/O or
    /// serialization failures.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        let json = serde_json::to_string(&self.to_snapshot())
            .map_err(|e| crate::FlareError::InvalidParameter(format!("serialize model: {e}")))?;
        std::fs::write(path, json)
            .map_err(|e| crate::FlareError::InvalidParameter(format!("write model: {e}")))
    }

    /// Loads a fitted instance from a JSON file written by [`Flare::save`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlareError::InvalidParameter`] wrapping I/O or
    /// parse failures, or snapshot-consistency errors.
    pub fn load(path: &std::path::Path) -> Result<Flare> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| crate::FlareError::InvalidParameter(format!("read model: {e}")))?;
        let snapshot: FlareSnapshot = serde_json::from_str(&json)
            .map_err(|e| crate::FlareError::InvalidParameter(format!("parse model: {e}")))?;
        Flare::from_snapshot(snapshot)
    }

    /// The §5.6 scheduler-change workflow: a new scheduler does not create
    /// unseen scenarios, it shifts how often existing ones occur. Given a
    /// re-weighting of the corpus (estimated occurrence counts under the
    /// new scheduler), re-derive the representatives **from step 3** —
    /// reusing the collected metrics, skipping the expensive collection.
    ///
    /// Scenarios re-weighted to zero are dropped from the clustered
    /// population.
    ///
    /// # Errors
    ///
    /// Propagates analyzer errors (e.g. too few surviving scenarios).
    pub fn recluster_with_weights<F>(&self, reweight: F) -> Result<Flare>
    where
        F: Fn(&CorpusEntry) -> u32,
    {
        let mut db = MetricDatabase::new(self.database.schema().clone());
        for entry in self.corpus.entries() {
            let w = reweight(entry);
            if w == 0 {
                continue;
            }
            let rec =
                self.database
                    .get(entry.id)
                    .ok_or(crate::FlareError::CorpusDatabaseMismatch {
                        scenario_id: entry.id,
                    })?;
            db.insert(ScenarioRecord {
                id: rec.id,
                metrics: rec.metrics.clone(),
                observations: w,
                job_mix: rec.job_mix.clone(),
            })?;
        }
        let analyzer = Analyzer::fit(&db, &self.config)?;
        Ok(Flare {
            corpus: self.corpus.clone(),
            database: db,
            analyzer,
            config: self.config.clone(),
            baseline: self.baseline.clone(),
        })
    }
}

/// Serializable snapshot of a fitted [`Flare`] instance.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FlareSnapshot {
    /// The scenario corpus.
    pub corpus: Corpus,
    /// The profiled metric database.
    pub database: MetricDatabase,
    /// The fitted analyzer state.
    pub analyzer: crate::analyzer::AnalyzerSnapshot,
    /// The pipeline configuration.
    pub config: FlareConfig,
    /// The baseline machine configuration.
    pub baseline: MachineConfig,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterCountRule;
    use flare_sim::datacenter::CorpusConfig;

    fn small_flare() -> Flare {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let flare_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            ..FlareConfig::default()
        };
        Flare::fit(corpus, flare_cfg).unwrap()
    }

    #[test]
    fn fit_produces_representatives() {
        let flare = small_flare();
        assert_eq!(flare.n_representatives(), 8);
        assert_eq!(flare.database().len(), flare.corpus().len());
    }

    #[test]
    fn evaluate_all_paper_features() {
        let flare = small_flare();
        for feature in Feature::paper_features() {
            let est = flare.evaluate(&feature).unwrap();
            assert!(
                est.impact_pct > 0.0 && est.impact_pct < 60.0,
                "{feature}: {}%",
                est.impact_pct
            );
        }
    }

    #[test]
    fn per_job_evaluation_works() {
        let flare = small_flare();
        let est = flare
            .evaluate_job(JobName::DataCaching, &Feature::paper_feature3())
            .unwrap();
        assert_eq!(est.job, JobName::DataCaching);
        assert!(est.impact_pct.is_finite());
    }

    #[test]
    fn recluster_keeps_scenarios_but_changes_weights() {
        let flare = small_flare();
        // New scheduler: consolidation doubles high-occupancy scenarios,
        // halves light ones.
        let reclustered = flare
            .recluster_with_weights(|e| {
                if e.scenario.occupancy(48) > 0.5 {
                    e.observations * 3
                } else {
                    1
                }
            })
            .unwrap();
        assert_eq!(reclustered.n_representatives(), 8);
        // Same corpus, same scenarios available.
        assert_eq!(reclustered.corpus().len(), flare.corpus().len());
        // Estimates still work after re-clustering.
        let est = reclustered.evaluate(&Feature::paper_feature3()).unwrap();
        assert!(est.impact_pct.is_finite());
    }

    #[test]
    fn snapshot_roundtrip_preserves_estimates() {
        let flare = small_flare();
        let feature = Feature::paper_feature1();
        let before = flare.evaluate(&feature).unwrap();

        let snapshot = flare.to_snapshot();
        let json = serde_json::to_string(&snapshot).unwrap();
        let restored: FlareSnapshot = serde_json::from_str(&json).unwrap();
        let reloaded = Flare::from_snapshot(restored).unwrap();
        let after = reloaded.evaluate(&feature).unwrap();

        assert_eq!(before.impact_pct, after.impact_pct);
        assert_eq!(
            flare.analyzer().representatives(),
            reloaded.analyzer().representatives()
        );
    }

    #[test]
    fn save_load_file_roundtrip() {
        let flare = small_flare();
        let dir = std::env::temp_dir().join("flare_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        flare.save(&path).unwrap();
        let reloaded = Flare::load(&path).unwrap();
        assert_eq!(flare.n_representatives(), reloaded.n_representatives());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_snapshot_rejected() {
        let flare = small_flare();
        let mut snapshot = flare.to_snapshot();
        snapshot.analyzer.observations.pop(); // break row alignment
        assert!(Flare::from_snapshot(snapshot).is_err());
    }

    #[test]
    fn temporal_enrichment_fits_and_evaluates() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let flare_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            temporal_phases: Some(6),
            ..FlareConfig::default()
        };
        let flare = Flare::fit(corpus, flare_cfg).unwrap();
        // The enriched schema doubles the raw metric count.
        assert_eq!(
            flare.database().schema().len(),
            2 * flare_metrics::schema::MetricSchema::canonical().len()
        );
        let est = flare.evaluate(&Feature::paper_feature1()).unwrap();
        assert!(est.impact_pct > 0.0 && est.impact_pct < 60.0);
    }

    #[test]
    fn zero_phases_rejected() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 1.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let bad = FlareConfig {
            temporal_phases: Some(0),
            ..FlareConfig::default()
        };
        assert!(Flare::fit(corpus, bad).is_err());
    }

    #[test]
    fn recluster_dropping_everything_fails() {
        let flare = small_flare();
        assert!(flare.recluster_with_weights(|_| 0).is_err());
    }

    #[test]
    fn recluster_detects_corpus_database_mismatch() {
        let flare = small_flare();
        let mut snapshot = flare.to_snapshot();
        // Rebuild the database without the last profiled record so one
        // corpus entry has no metrics behind it.
        let dropped = flare.corpus().entries().last().unwrap().id;
        let mut pruned = MetricDatabase::new(snapshot.database.schema().clone());
        for rec in snapshot.database.iter() {
            if rec.id != dropped {
                pruned.insert(rec.clone()).unwrap();
            }
        }
        snapshot.database = pruned;
        let broken = Flare::from_snapshot(snapshot).unwrap();
        match broken.recluster_with_weights(|_| 1) {
            Err(crate::FlareError::CorpusDatabaseMismatch { scenario_id }) => {
                assert_eq!(scenario_id, dropped);
            }
            other => panic!("expected CorpusDatabaseMismatch, got {other:?}"),
        }
    }
}
