//! Exact-pruned k-means kernel layer.
//!
//! Everything in this module accelerates the Lloyd hot path **without
//! changing a single output bit** relative to the naive reference
//! implementation ([`crate::kmeans::kmeans_naive`]). Three ingredients:
//!
//! 1. **Flat centroid storage** — [`CentroidBuffer`] keeps the `k`
//!    centroids in one row-major `Vec<f64>` with stride-`d` rows, replacing
//!    the pointer-chasing `Vec<Vec<f64>>` (one heap allocation per
//!    centroid) that the naive path scans for every point.
//!
//! 2. **Norm-bound pruning** — from the decomposition
//!    `‖x−c‖² = ‖x‖² + ‖c‖² − 2⟨x,c⟩` and Cauchy–Schwarz
//!    (`⟨x,c⟩ ≤ ‖x‖·‖c‖`) follows the lower bound
//!    `‖x−c‖² ≥ (‖x‖ − ‖c‖)²`. With per-point and per-centroid norms
//!    cached, a centroid whose bound already exceeds the best distance
//!    found so far can be skipped in O(1) instead of paying the O(d) exact
//!    distance. The bound carries a conservative multiplicative slack
//!    ([`PRUNE_SLACK`]) absorbing all floating-point rounding in the cached
//!    norms, and every *surviving* candidate is confirmed with the
//!    existing scalar [`squared_euclidean`] kernel under the existing
//!    lowest-index tie-break — so the selected index *and* the reported
//!    distance are bit-identical to the naive full scan by construction
//!    (see `DESIGN.md` §8 for the derivation).
//!
//! 3. **Intra-restart parallel assignment** — [`assign_rows`] chunks rows
//!    through [`flare_exec::par_map_chunks`]. Each row's assignment is a
//!    pure function of `(row, centroids)`, so every thread count and every
//!    chunking yields identical assignments; this extends the repo's
//!    byte-identical-determinism contract *inside* a single restart, which
//!    matters when `restarts < cores` (the common case at FLARE's k ≈ 10).
//!
//! The module also provides [`LloydScratch`] (per-iteration sums/counts/
//! norm buffers reused across iterations, eliminating the per-iteration
//! `vec![vec![0.0; d]; k]` allocations) and [`PairwiseDistances`] (a
//! shared cache of all pairwise point distances that the cluster-count
//! sweep builds once and reuses for every per-`k` silhouette, instead of
//! recomputing the O(n²·d) distance set per candidate count).

use crate::distance::{norm, squared_euclidean};
use flare_exec::{par_map_chunks, resolve_threads};
use flare_linalg::Matrix;

/// Multiplicative slack applied to the pruning bound before comparing it
/// against the best distance found so far.
///
/// The true bound `(‖x‖−‖c‖)² ≤ ‖x−c‖²` holds in real arithmetic; the
/// *computed* bound differs from it by a few ulps (two square roots, one
/// subtraction, one multiply), and the computed exact distance differs
/// from the true distance by at most ~`d · ε` relative. Scaling the bound
/// down by `1e-9` — six orders of magnitude more slack than those errors
/// combined for any realistic dimensionality (`d ≲ 10⁵`) — guarantees a
/// centroid is only pruned when its *computed* exact distance would have
/// been strictly greater than the current best, i.e. when the naive scan
/// could never have selected it.
pub const PRUNE_SLACK: f64 = 1.0 - 1e-9;

/// Row count below which [`assign_rows`] always runs inline: the
/// assignment step for fewer rows costs less than spawning workers.
const MIN_ASSIGN_CHUNK: usize = 256;

/// Row count per worker chunk when building a [`PairwiseDistances`] cache.
const MIN_PAIRWISE_CHUNK: usize = 64;

/// Flat row-major centroid storage: `k` rows of stride `d` in one
/// contiguous buffer.
///
/// # Examples
///
/// ```
/// use flare_cluster::kernel::CentroidBuffer;
///
/// let c = CentroidBuffer::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0]]);
/// assert_eq!(c.k(), 2);
/// assert_eq!(c.row(1), &[2.0, 3.0]);
/// assert_eq!(c.to_rows(), vec![vec![0.0, 1.0], vec![2.0, 3.0]]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CentroidBuffer {
    k: usize,
    d: usize,
    data: Vec<f64>,
}

impl CentroidBuffer {
    /// A `k x d` buffer of zeros.
    pub fn zeros(k: usize, d: usize) -> Self {
        CentroidBuffer {
            k,
            d,
            data: vec![0.0; k * d],
        }
    }

    /// Builds a buffer from equal-length rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths (callers pass validated
    /// centroid sets).
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let d = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows.len() * d);
        for r in rows {
            assert_eq!(r.len(), d, "ragged centroid rows");
            data.extend_from_slice(r);
        }
        CentroidBuffer {
            k: rows.len(),
            d,
            data,
        }
    }

    /// Builds a buffer from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != k * d`.
    pub fn from_flat(k: usize, d: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), k * d, "flat centroid buffer length mismatch");
        CentroidBuffer { k, d, data }
    }

    /// Number of centroids.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Centroid dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The `c`-th centroid as a slice.
    pub fn row(&self, c: usize) -> &[f64] {
        &self.data[c * self.d..(c + 1) * self.d]
    }

    /// Mutable view of the `c`-th centroid.
    pub fn row_mut(&mut self, c: usize) -> &mut [f64] {
        &mut self.data[c * self.d..(c + 1) * self.d]
    }

    /// Overwrites the `c`-th centroid.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != dim()`.
    pub fn set_row(&mut self, c: usize, src: &[f64]) {
        self.row_mut(c).copy_from_slice(src);
    }

    /// The underlying flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Copies the buffer out as the legacy `Vec<Vec<f64>>` shape (the
    /// serialized [`crate::kmeans::KMeansResult`] wire format, which stays
    /// unchanged for snapshot compatibility).
    pub fn to_rows(&self) -> Vec<Vec<f64>> {
        self.data
            .chunks_exact(self.d.max(1))
            .map(<[f64]>::to_vec)
            .collect()
    }

    /// Fills `out` with the Euclidean norm of every centroid. `out` is
    /// reused across Lloyd iterations via [`LloydScratch`].
    pub fn norms_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.k);
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = norm(self.row(c));
        }
    }
}

/// Per-restart scratch arena for Lloyd iterations: accumulation sums
/// (flat `k x d`), member counts, and cached centroid norms, all reused
/// across iterations so the inner loop never allocates.
#[derive(Debug)]
pub struct LloydScratch {
    /// Flat row-major `k x d` accumulation buffer for the update step.
    pub sums: Vec<f64>,
    /// Member count per cluster.
    pub counts: Vec<usize>,
    /// Cached `‖c‖` per centroid (refreshed each assignment step).
    pub centroid_norms: Vec<f64>,
    /// Staging row for the recomputed mean (movement is measured against
    /// the old centroid before it is overwritten).
    pub mean: Vec<f64>,
}

impl LloydScratch {
    /// Allocates scratch for `k` clusters of dimension `d`.
    pub fn new(k: usize, d: usize) -> Self {
        LloydScratch {
            sums: vec![0.0; k * d],
            counts: vec![0; k],
            centroid_norms: vec![0.0; k],
            mean: vec![0.0; d],
        }
    }

    /// Zeroes the accumulation buffers for the next update step.
    pub fn reset_accumulators(&mut self) {
        self.sums.fill(0.0);
        self.counts.fill(0);
    }
}

/// Squared Euclidean distance with partial-sum early exit: returns `None`
/// as soon as the running sum exceeds `bound`, `Some(full distance)`
/// otherwise.
///
/// Exactness: the accumulation is the same sequential index-order sum as
/// [`squared_euclidean`], and every term `d·d` is non-negative, so each
/// IEEE-754 add is monotone — once a prefix sum exceeds `bound`, the full
/// sum would too (strictly), and a candidate rejected here could never
/// have been selected, not even at a tie. A `Some` value carries the
/// identical bits the unbounded kernel produces.
pub fn squared_euclidean_bounded(a: &[f64], b: &[f64], bound: f64) -> Option<f64> {
    debug_assert_eq!(a.len(), b.len(), "distance between mismatched points");
    const STRIDE: usize = 4;
    let mut sum = 0.0;
    let mut start = 0;
    while start < a.len() {
        let end = (start + STRIDE).min(a.len());
        for i in start..end {
            let d = a[i] - b[i];
            sum += d * d;
        }
        if sum > bound {
            return None;
        }
        start = end;
    }
    Some(sum)
}

/// Exact nearest-centroid search with norm-bound pruning.
///
/// Returns `(index, squared_distance)` of the centroid nearest to `point`,
/// **bit-identical** to the naive full scan
/// (`nearest_centroid(point, centroids)`): the same lowest-index
/// tie-break, and a distance value produced by the same scalar
/// [`squared_euclidean`] kernel.
///
/// `hint` is a warm-start candidate (typically the point's assignment from
/// the previous Lloyd iteration); it is evaluated first so the pruning
/// bound is tight from the start of the scan. Any `hint < k` yields the
/// identical result — it only affects how many candidates get pruned.
///
/// # Panics
///
/// Panics (in debug builds) if `hint >= k` or the norm caches are stale.
pub fn assign_exact_pruned(
    point: &[f64],
    point_norm: f64,
    centroids: &CentroidBuffer,
    centroid_norms: &[f64],
    hint: usize,
) -> (usize, f64) {
    debug_assert!(hint < centroids.k(), "warm-start hint out of range");
    debug_assert_eq!(centroid_norms.len(), centroids.k());
    let mut best_idx = hint;
    let mut best = squared_euclidean(point, centroids.row(hint));
    for (c, &c_norm) in centroid_norms.iter().enumerate() {
        if c == hint {
            continue;
        }
        let gap = point_norm - c_norm;
        if gap * gap * PRUNE_SLACK > best {
            // (‖x‖−‖c‖)² already exceeds the best distance with slack to
            // spare: the exact distance cannot win, skip the O(d) confirm.
            continue;
        }
        // Confirm with the exact kernel, aborting mid-scan once the
        // partial sum already exceeds the best (monotone non-negative
        // accumulation: the full sum could only be larger).
        let Some(dist) = squared_euclidean_bounded(point, centroids.row(c), best) else {
            continue;
        };
        if dist < best || (dist == best && c < best_idx) {
            best = dist;
            best_idx = c;
        }
    }
    (best_idx, best)
}

/// Squared distance from `point` to its nearest centroid (no pruning — a
/// plain flat scan, used on the rare empty-cluster reseed path where the
/// centroid buffer is mid-update and norm caches are stale).
pub fn nearest_distance_flat(point: &[f64], centroids: &CentroidBuffer) -> f64 {
    let mut best = f64::INFINITY;
    for c in 0..centroids.k() {
        if let Some(d) = squared_euclidean_bounded(point, centroids.row(c), best) {
            if d < best {
                best = d;
            }
        }
    }
    best
}

/// Euclidean norm of every row of `data`, computed once per k-means call
/// and shared read-only across restarts.
pub fn point_norms(data: &Matrix) -> Vec<f64> {
    (0..data.nrows()).map(|i| norm(data.row(i))).collect()
}

/// The assignment step over all rows: writes each row's nearest-centroid
/// index into `assignments`, using the *previous* content of
/// `assignments` as warm-start hints.
///
/// With more than one worker the rows are chunked through
/// [`par_map_chunks`]; each worker walks its contiguous
/// [`Matrix::row_block`] with a tight `chunks_exact(d)` loop. Every
/// thread count produces identical assignments because each row's result
/// is a pure function of `(row, centroids)`.
///
/// # Panics
///
/// Panics (in debug builds) if any existing assignment is `>= k`.
pub fn assign_rows(
    data: &Matrix,
    point_norms: &[f64],
    centroids: &CentroidBuffer,
    centroid_norms: &[f64],
    assignments: &mut [usize],
    threads: Option<usize>,
) {
    let n = data.nrows();
    let d = data.ncols();
    debug_assert_eq!(assignments.len(), n);
    let workers = resolve_threads(threads)
        .min(n.div_ceil(MIN_ASSIGN_CHUNK))
        .max(1);
    if workers == 1 {
        for (i, slot) in assignments.iter_mut().enumerate() {
            *slot = assign_exact_pruned(
                data.row(i),
                point_norms[i],
                centroids,
                centroid_norms,
                *slot,
            )
            .0;
        }
        return;
    }
    let fresh = par_map_chunks(n, Some(workers), MIN_ASSIGN_CHUNK, |range| {
        let block = data.row_block(range.clone());
        block
            .chunks_exact(d)
            .zip(range)
            .map(|(row, i)| {
                assign_exact_pruned(
                    row,
                    point_norms[i],
                    centroids,
                    centroid_norms,
                    assignments[i],
                )
                .0
            })
            .collect()
    });
    assignments.copy_from_slice(&fresh);
}

/// Sum of squared distances from each row to its assigned centroid —
/// the flat-buffer twin of [`crate::kmeans::compute_sse`], summing in the
/// same row order with the same scalar kernel (identical bits).
pub fn sse_flat(data: &Matrix, centroids: &CentroidBuffer, assignments: &[usize]) -> f64 {
    assignments
        .iter()
        .enumerate()
        .map(|(i, &a)| squared_euclidean(data.row(i), centroids.row(a)))
        .sum()
}

/// Mean of each cluster's member rows, accumulated into a flat buffer
/// (empty clusters keep the origin). Bit-identical to the legacy
/// `Vec<Vec<f64>>` accumulation: same row order, same scalar ops.
pub fn centroids_of_flat(data: &Matrix, assignments: &[usize], k: usize) -> CentroidBuffer {
    let d = data.ncols();
    let mut buf = CentroidBuffer::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &a) in assignments.iter().enumerate() {
        counts[a] += 1;
        for (s, v) in buf.row_mut(a).iter_mut().zip(data.row(i)) {
            *s += v;
        }
    }
    for (c, &count) in counts.iter().enumerate() {
        if count > 0 {
            for s in buf.row_mut(c) {
                *s /= count as f64;
            }
        }
    }
    buf
}

/// Cache of all pairwise Euclidean distances between the rows of a
/// matrix, stored as a full symmetric `n x n` row-major matrix (zeros on
/// the diagonal).
///
/// The cluster-count sweep computes a silhouette per candidate `k`; each
/// silhouette needs every pairwise distance, and the distances depend only
/// on the data — not on `k` or the assignments. Building this cache once
/// per sweep replaces `|ks|` full O(n²·d) distance passes with one.
/// Entry `(i, j)` holds exactly `squared_euclidean(row_i, row_j).sqrt()`
/// — the same bits the on-the-fly computation produces (the scalar kernel
/// is symmetric in its arguments at the bit level), so cached and
/// uncached silhouettes are byte-identical. The full (mirrored) layout
/// doubles memory versus a condensed triangle, but makes every [`row`]
/// a contiguous slice — the silhouette accumulation walks it
/// sequentially instead of gathering across a triangle.
///
/// [`row`]: PairwiseDistances::row
#[derive(Debug, Clone, PartialEq)]
pub struct PairwiseDistances {
    n: usize,
    /// Full `n x n` row-major distance matrix, `data[i*n + j] = d(i, j)`.
    data: Vec<f64>,
}

impl PairwiseDistances {
    /// Builds the cache with the Euclidean metric, chunking rows across
    /// worker threads (`None` = available parallelism). Every thread
    /// count yields the identical cache.
    pub fn compute(data: &Matrix, threads: Option<usize>) -> Self {
        Self::compute_with(data, threads, |a, b| squared_euclidean(a, b).sqrt())
    }

    /// Builds the cache with an arbitrary symmetric metric.
    ///
    /// Each unordered pair is evaluated once (upper triangle, chunked
    /// across workers) and mirrored, so an asymmetric metric would be
    /// symmetrized by construction.
    pub fn compute_with(
        data: &Matrix,
        threads: Option<usize>,
        metric: impl Fn(&[f64], &[f64]) -> f64 + Sync,
    ) -> Self {
        let n = data.nrows();
        let entries = par_map_chunks(n, threads, MIN_PAIRWISE_CHUNK, |range| {
            let mut out = Vec::new();
            for i in range {
                let ri = data.row(i);
                for j in (i + 1)..n {
                    out.push(metric(ri, data.row(j)));
                }
            }
            out
        });
        let mut full = vec![0.0f64; n * n];
        let mut pos = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = entries[pos];
                pos += 1;
                full[i * n + j] = d;
                full[j * n + i] = d;
            }
        }
        PairwiseDistances { n, data: full }
    }

    /// Number of points the cache covers.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The cached distance between points `i` and `j` (0 on the
    /// diagonal).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.n && j < self.n, "pairwise index out of range");
        self.data[i * self.n + j]
    }

    /// All distances from point `i`, as a contiguous slice of length `n`
    /// (entry `i` is the zero diagonal).
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Approximate heap footprint in bytes (used by callers gating the
    /// cache on corpus size).
    pub fn footprint_bytes(n: usize) -> usize {
        n.saturating_mul(n) * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::nearest_centroid;

    fn buffer3() -> CentroidBuffer {
        CentroidBuffer::from_rows(&[vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 2.0]])
    }

    #[test]
    fn centroid_buffer_round_trips_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let buf = CentroidBuffer::from_rows(&rows);
        assert_eq!(buf.k(), 2);
        assert_eq!(buf.dim(), 2);
        assert_eq!(buf.row(0), &[1.0, 2.0]);
        assert_eq!(buf.to_rows(), rows);
        let flat = CentroidBuffer::from_flat(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(flat, buf);
    }

    #[test]
    fn centroid_buffer_mutation() {
        let mut buf = CentroidBuffer::zeros(2, 3);
        buf.set_row(1, &[1.0, 2.0, 3.0]);
        assert_eq!(buf.row(0), &[0.0; 3]);
        assert_eq!(buf.row(1), &[1.0, 2.0, 3.0]);
        buf.row_mut(0)[2] = 9.0;
        assert_eq!(buf.as_slice(), &[0.0, 0.0, 9.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn pruned_assignment_matches_naive_scan() {
        let buf = buffer3();
        let rows = buf.to_rows();
        let mut norms = vec![0.0; 3];
        buf.norms_into(&mut norms);
        let points = [
            vec![0.0, 1.5],
            vec![9.0, 0.1],
            vec![-3.0, -3.0],
            vec![5.0, 1.0], // near-tie territory between clusters
            vec![0.0, 0.0],
        ];
        for p in &points {
            let naive = nearest_centroid(p, &rows).unwrap();
            for hint in 0..3 {
                let pruned = assign_exact_pruned(p, norm(p), &buf, &norms, hint);
                assert_eq!(pruned, naive, "point {p:?} hint {hint}");
            }
        }
    }

    #[test]
    fn pruned_assignment_ties_break_to_lowest_index() {
        // Two identical centroids: naive min_by keeps the first.
        let buf = CentroidBuffer::from_rows(&[vec![1.0], vec![1.0], vec![5.0]]);
        let mut norms = vec![0.0; 3];
        buf.norms_into(&mut norms);
        for hint in 0..3 {
            let (idx, d) = assign_exact_pruned(&[1.2], norm(&[1.2]), &buf, &norms, hint);
            assert_eq!(idx, 0, "hint {hint}");
            assert_eq!(d, squared_euclidean(&[1.2], &[1.0]));
        }
    }

    #[test]
    fn assign_rows_is_thread_and_hint_invariant() {
        // 1000 deterministic points, 8 centroids.
        let rows: Vec<Vec<f64>> = (0..1000)
            .map(|i| {
                let c = (i % 8) as f64 * 3.0;
                vec![c + (i as f64 * 0.37).sin(), c - (i as f64 * 0.73).cos()]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let cents = CentroidBuffer::from_rows(
            &(0..8)
                .map(|c| vec![c as f64 * 3.0, c as f64 * 3.0])
                .collect::<Vec<_>>(),
        );
        let norms_x = point_norms(&data);
        let mut norms_c = vec![0.0; 8];
        cents.norms_into(&mut norms_c);
        let mut serial = vec![0usize; 1000];
        assign_rows(&data, &norms_x, &cents, &norms_c, &mut serial, Some(1));
        for threads in [Some(2), Some(4), Some(64), None] {
            // Start from different (valid) hints to prove hint-invariance.
            let mut par = vec![7usize; 1000];
            assign_rows(&data, &norms_x, &cents, &norms_c, &mut par, threads);
            assert_eq!(serial, par, "threads={threads:?}");
        }
        // Cross-check a sample against the naive scan.
        let legacy = cents.to_rows();
        for i in (0..1000).step_by(97) {
            assert_eq!(serial[i], nearest_centroid(data.row(i), &legacy).unwrap().0);
        }
    }

    #[test]
    fn flat_centroid_means_match_legacy() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0], vec![10.0]]).unwrap();
        let buf = centroids_of_flat(&data, &[0, 0, 1], 2);
        assert_eq!(buf.to_rows(), vec![vec![1.0], vec![10.0]]);
        // Empty cluster keeps the origin.
        let buf = centroids_of_flat(&data, &[0, 0, 0], 2);
        assert_eq!(buf.row(1), &[0.0]);
    }

    #[test]
    fn sse_flat_matches_definition() {
        let data = Matrix::from_rows(&[vec![0.0], vec![2.0]]).unwrap();
        let buf = CentroidBuffer::from_rows(&[vec![1.0]]);
        assert_eq!(sse_flat(&data, &buf, &[0, 0]), 2.0);
    }

    #[test]
    fn pairwise_cache_matches_on_the_fly_bits() {
        let rows: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                vec![
                    (i as f64 * 0.31).sin() * 20.0,
                    (i as f64 * 0.17).cos() * 5.0,
                ]
            })
            .collect();
        let data = Matrix::from_rows(&rows).unwrap();
        let serial = PairwiseDistances::compute(&data, Some(1));
        for threads in [Some(2), Some(3), None] {
            assert_eq!(serial, PairwiseDistances::compute(&data, threads));
        }
        for i in 0..40 {
            for j in 0..40 {
                let expected = if i == j {
                    0.0
                } else {
                    squared_euclidean(data.row(i), data.row(j)).sqrt()
                };
                assert_eq!(serial.get(i, j).to_bits(), expected.to_bits(), "({i},{j})");
            }
        }
        assert_eq!(serial.n(), 40);
    }

    #[test]
    fn pairwise_footprint_is_full_matrix() {
        assert_eq!(PairwiseDistances::footprint_bytes(0), 0);
        assert_eq!(PairwiseDistances::footprint_bytes(2), 32);
        assert_eq!(PairwiseDistances::footprint_bytes(1000), 1000 * 1000 * 8);
    }

    #[test]
    fn pairwise_rows_are_contiguous_and_symmetric() {
        let data = Matrix::from_rows(&[vec![0.0], vec![3.0], vec![7.0]]).unwrap();
        let dists = PairwiseDistances::compute(&data, Some(1));
        assert_eq!(dists.row(1), &[3.0, 0.0, 4.0]);
        for i in 0..3 {
            assert_eq!(dists.row(i).len(), 3);
            for j in 0..3 {
                assert_eq!(dists.get(i, j).to_bits(), dists.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn bounded_distance_matches_unbounded_bits() {
        let a: Vec<f64> = (0..13).map(|i| (i as f64 * 0.61).sin() * 9.0).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64 * 0.29).cos() * 9.0).collect();
        let full = squared_euclidean(&a, &b);
        // Any bound >= the true distance yields the identical bits.
        for bound in [full, full * 2.0, f64::INFINITY] {
            assert_eq!(
                squared_euclidean_bounded(&a, &b, bound).unwrap().to_bits(),
                full.to_bits()
            );
        }
        // A bound strictly below the distance rejects.
        assert_eq!(squared_euclidean_bounded(&a, &b, full * 0.5), None);
        // Equality is not an early exit: bound == full must survive.
        assert!(squared_euclidean_bounded(&a, &b, full).is_some());
    }

    #[test]
    fn nearest_distance_flat_matches_scan() {
        let buf = buffer3();
        let rows = buf.to_rows();
        let p = [4.0, 1.0];
        assert_eq!(
            nearest_distance_flat(&p, &buf),
            nearest_centroid(&p, &rows).unwrap().1
        );
    }
}
