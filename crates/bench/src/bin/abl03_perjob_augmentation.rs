//! Ablation 3: §5.3 per-job metric augmentation — the paper predicts that
//! including per-job metrics in the clustered feature space "would greatly
//! improve the estimation accuracy for the job" but "may deteriorate the
//! clustering quality". This ablation quantifies both sides.

use flare_baselines::fulldc::{full_datacenter_impact, full_datacenter_job_impact};
use flare_bench::banner;
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;
use flare_workloads::job::JobName;

fn main() {
    banner(
        "Ablation: per-job metric augmentation of the feature space",
        "§5.3 (the paper's suggested but unevaluated extension)",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();

    for (name, augment) in [
        ("general metrics only (paper default)", false),
        ("with per-job mix columns", true),
    ] {
        let flare = Flare::fit(
            corpus.clone(),
            FlareConfig {
                per_job_augmentation: augment,
                ..FlareConfig::default()
            },
        )
        .expect("fit");
        println!(
            "\n[{name}] refined metrics: {}, PCs: {}",
            flare.analyzer().refined_schema().len(),
            flare.analyzer().n_pcs()
        );

        let mut all_errs = Vec::new();
        let mut job_errs = Vec::new();
        for feature in Feature::paper_features() {
            let fc = feature.apply(&baseline);
            let truth =
                full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
            let est = flare.evaluate(&feature).expect("estimate").impact_pct;
            all_errs.push((est - truth).abs());
            for &job in JobName::HIGH_PRIORITY {
                let jt =
                    full_datacenter_job_impact(&corpus, &SimTestbed, job, &baseline, &fc, true)
                        .expect("job present");
                let je = flare
                    .evaluate_job(job, &feature)
                    .expect("estimate")
                    .impact_pct;
                job_errs.push((je - jt).abs());
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let max = |v: &[f64]| v.iter().cloned().fold(0.0, f64::max);
        println!(
            "  all-job error: mean {:.2}pp max {:.2}pp",
            mean(&all_errs),
            max(&all_errs)
        );
        println!(
            "  per-job error: mean {:.2}pp max {:.2}pp",
            mean(&job_errs),
            max(&job_errs)
        );
    }
    println!(
        "\ntakeaway: quantifies the §5.3 trade-off — job-mix columns sharpen per-job\n\
         estimates if and only if the all-job clustering quality survives the extra\n\
         dimensions."
    );
}
