//! Evaluating a power-capping (DVFS) policy on a heterogeneous fleet
//! (§5.5): representatives are derived *per machine shape* because a
//! colocation that fits the big shape saturates the small one.
//!
//! ```sh
//! cargo run --release --example heterogeneous_fleet
//! ```

use flare::prelude::*;

fn main() -> Result<(), FlareError> {
    let feature = Feature::DvfsCap { freq_max_ghz: 2.0 };
    println!("evaluating {} on both machine shapes\n", feature.label());

    for (name, shape) in [
        ("Default (Table 2)", MachineShape::default_shape()),
        ("Small   (Table 5)", MachineShape::small_shape()),
    ] {
        let corpus_config = CorpusConfig {
            machine_config: shape.baseline_config(),
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&corpus_config);
        let flare = Flare::fit(corpus, FlareConfig::default())?;
        let estimate = flare.evaluate(&feature)?;
        println!(
            "[{name}] {} scenarios -> {} representatives",
            flare.corpus().len(),
            flare.n_representatives()
        );
        println!(
            "  fleet impact of the 2.0 GHz cap: {:.2}% MIPS reduction",
            estimate.impact_pct
        );
        // Shape-specific insight: which services hurt most on this shape?
        let mut per_job: Vec<(JobName, f64)> = JobName::HIGH_PRIORITY
            .iter()
            .filter_map(|&j| {
                flare
                    .evaluate_job(j, &feature)
                    .ok()
                    .map(|e| (j, e.impact_pct))
            })
            .collect();
        per_job.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        let worst: Vec<String> = per_job
            .iter()
            .take(3)
            .map(|(j, i)| format!("{j} ({i:.1}%)"))
            .collect();
        println!("  most affected services: {}\n", worst.join(", "));
    }

    println!(
        "note: each shape gets its own representative set — a shape lives 5-10 years\n\
         through many feature upgrades, so the one-time extraction amortizes (§5.5)."
    );
    Ok(())
}
