//! Property-based tests for the linear-algebra substrate.

use flare_linalg::eigen::{symmetric_eigen, symmetric_eigen_naive};
use flare_linalg::kernel::{eigenvalues_agree, symmetric_eigen_tridiagonal};
use flare_linalg::pca::{covariance, Pca};
use flare_linalg::stats::{self, zscore_columns};
use flare_linalg::Matrix;
use proptest::prelude::*;

/// Strategy: a well-conditioned data matrix with `rows` observations of
/// `cols` variables, entries bounded so covariances stay finite.
fn data_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-100.0f64..100.0, cols), rows..=rows)
        .prop_map(|rows| Matrix::from_rows(&rows).expect("rectangular by construction"))
}

/// Strategy: a random symmetric matrix built as (A + Aᵀ)/2.
fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-10.0f64..10.0, n), n..=n).prop_map(move |rows| {
        let a = Matrix::from_rows(&rows).expect("rectangular");
        a.add(&a.transpose()).expect("same shape").scale(0.5)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(m in data_matrix(5, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in data_matrix(4, 4)) {
        let i = Matrix::identity(4);
        prop_assert_eq!(m.matmul(&i).unwrap(), m.clone());
        prop_assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn transpose_of_product_is_reversed_product(
        a in data_matrix(3, 4),
        b in data_matrix(4, 5),
    ) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.sub(&rhs).unwrap().frobenius_norm() < 1e-8);
    }

    #[test]
    fn eigen_reconstruction(m in symmetric_matrix(5)) {
        let e = symmetric_eigen(&m).unwrap();
        let mut lambda = Matrix::zeros(5, 5);
        for i in 0..5 {
            lambda[(i, i)] = e.eigenvalues[i];
        }
        let recon = e
            .eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap();
        let err = recon.sub(&m).unwrap().frobenius_norm();
        let scale = m.frobenius_norm().max(1.0);
        prop_assert!(err / scale < 1e-8, "relative reconstruction error {}", err / scale);
    }

    #[test]
    fn eigenvalues_sorted_and_trace_preserved(m in symmetric_matrix(6)) {
        let e = symmetric_eigen(&m).unwrap();
        for w in e.eigenvalues.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        let trace: f64 = (0..6).map(|i| m[(i, i)]).sum();
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * trace.abs().max(1.0));
    }

    #[test]
    fn eigenvectors_orthonormal(m in symmetric_matrix(4)) {
        let e = symmetric_eigen(&m).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        prop_assert!(vtv.sub(&Matrix::identity(4)).unwrap().frobenius_norm() < 1e-8);
    }

    #[test]
    fn covariance_is_symmetric_psd(data in data_matrix(12, 4)) {
        let c = covariance(&data).unwrap();
        prop_assert!(c.is_symmetric(1e-9));
        let e = symmetric_eigen(&c).unwrap();
        prop_assert!(e.eigenvalues.iter().all(|&l| l > -1e-7));
    }

    #[test]
    fn zscore_columns_standardize(data in data_matrix(10, 3)) {
        let (t, _) = zscore_columns(&data).unwrap();
        for j in 0..3 {
            let col = t.col(j);
            prop_assert!(stats::mean(&col).abs() < 1e-9);
            let v = stats::variance(&col);
            // Constant columns are left at zero variance by design.
            prop_assert!(v.abs() < 1e-9 || (v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pca_explained_ratios_partition_unity(data in data_matrix(15, 5)) {
        let pca = Pca::fit(&data).unwrap();
        let sum: f64 = pca.explained_variance_ratio().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8);
        // Ratios descend.
        for w in pca.explained_variance_ratio().windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn pca_projection_preserves_row_count(data in data_matrix(9, 4)) {
        let pca = Pca::fit(&data).unwrap();
        let k = pca.components_for_variance(0.9).unwrap();
        let proj = pca.transform(&data, k).unwrap();
        prop_assert_eq!(proj.nrows(), 9);
        prop_assert_eq!(proj.ncols(), k);
    }

    #[test]
    fn pearson_is_symmetric_and_bounded(
        xs in prop::collection::vec(-50.0f64..50.0, 8),
        ys in prop::collection::vec(-50.0f64..50.0, 8),
    ) {
        let a = stats::pearson(&xs, &ys).unwrap();
        let b = stats::pearson(&ys, &xs).unwrap();
        prop_assert!((a - b).abs() < 1e-12);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&a));
    }

    #[test]
    fn quantiles_are_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..40)) {
        let q1 = stats::quantile(&xs, 0.25).unwrap();
        let q2 = stats::quantile(&xs, 0.5).unwrap();
        let q3 = stats::quantile(&xs, 0.75).unwrap();
        prop_assert!(q1 <= q2 && q2 <= q3);
    }
}

/// Strategy: a symmetric matrix with a degenerate spectrum — `c·I + v·vᵀ`
/// has eigenvalue `c` with multiplicity `n − 1` plus `c + ‖v‖²`.
fn degenerate_spectrum_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    (prop::collection::vec(-3.0f64..3.0, n..=n), -5.0f64..5.0).prop_map(move |(v, c)| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = v[i] * v[j];
            }
            m[(i, i)] += c;
        }
        m
    })
}

/// For each eigenvector column, the first entry attaining the maximum
/// absolute value must be non-negative — the canonicalization
/// `finalize_pairs` applies, which both solver paths share.
fn sign_canonical(vectors: &Matrix) -> bool {
    (0..vectors.ncols()).all(|j| {
        let col = vectors.col(j);
        let lead = col
            .iter()
            .fold((0.0f64, 0.0f64), |(best, lead), &x| {
                if x.abs() > best {
                    (x.abs(), x)
                } else {
                    (best, lead)
                }
            })
            .1;
        lead >= 0.0
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Differential contract of the tridiagonal implicit-QL kernel against
    /// the cyclic Jacobi oracle: eigenvalues agree to the documented
    /// tolerance ([`flare_linalg::kernel::ORACLE_EIGENVALUE_RTOL`]), both
    /// spectra descend, both eigenvector sets reconstruct the input, and
    /// both carry the shared sign canonicalization.
    #[test]
    fn kernel_matches_jacobi_oracle(m in symmetric_matrix(6)) {
        let kernel = symmetric_eigen_tridiagonal(&m).unwrap();
        let oracle = symmetric_eigen_naive(&m).unwrap();
        prop_assert!(
            eigenvalues_agree(&kernel.eigenvalues, &oracle.eigenvalues),
            "kernel {:?} vs oracle {:?}",
            kernel.eigenvalues,
            oracle.eigenvalues
        );
        for e in [&kernel, &oracle] {
            for w in e.eigenvalues.windows(2) {
                prop_assert!(w[0] >= w[1] - 1e-9, "spectrum not descending");
            }
            let mut lambda = Matrix::zeros(6, 6);
            for i in 0..6 {
                lambda[(i, i)] = e.eigenvalues[i];
            }
            let recon = e
                .eigenvectors
                .matmul(&lambda)
                .unwrap()
                .matmul(&e.eigenvectors.transpose())
                .unwrap();
            let err = recon.sub(&m).unwrap().frobenius_norm();
            let scale = m.frobenius_norm().max(1.0);
            prop_assert!(err / scale < 1e-8, "relative reconstruction error {}", err / scale);
            prop_assert!(sign_canonical(&e.eigenvectors));
        }
    }

    /// The same contract on degenerate (repeated-eigenvalue) spectra,
    /// where subspace rotations make eigenvector comparison meaningless
    /// but eigenvalues and reconstruction must still line up.
    #[test]
    fn kernel_matches_oracle_on_degenerate_spectra(m in degenerate_spectrum_matrix(5)) {
        let kernel = symmetric_eigen_tridiagonal(&m).unwrap();
        let oracle = symmetric_eigen_naive(&m).unwrap();
        prop_assert!(
            eigenvalues_agree(&kernel.eigenvalues, &oracle.eigenvalues),
            "kernel {:?} vs oracle {:?}",
            kernel.eigenvalues,
            oracle.eigenvalues
        );
        let mut lambda = Matrix::zeros(5, 5);
        for i in 0..5 {
            lambda[(i, i)] = kernel.eigenvalues[i];
        }
        let recon = kernel
            .eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&kernel.eigenvectors.transpose())
            .unwrap();
        let err = recon.sub(&m).unwrap().frobenius_norm();
        prop_assert!(err / m.frobenius_norm().max(1.0) < 1e-8);
    }

    /// The public `symmetric_eigen` entry point IS the kernel path — the
    /// routing must stay bit-exact.
    #[test]
    fn public_entry_point_routes_through_the_kernel(m in symmetric_matrix(4)) {
        let routed = symmetric_eigen(&m).unwrap();
        let direct = symmetric_eigen_tridiagonal(&m).unwrap();
        prop_assert_eq!(routed.eigenvalues, direct.eigenvalues);
        prop_assert_eq!(routed.eigenvectors, direct.eigenvectors);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Power-iteration top-k agrees with the full Jacobi spectrum on PSD
    /// matrices (within deflation tolerance).
    #[test]
    fn top_k_tracks_jacobi(data in data_matrix(8, 5)) {
        let g = data.transpose().matmul(&data).unwrap();
        let full = symmetric_eigen(&g).unwrap();
        // Skip near-degenerate spectra where the eigenvector pairing is
        // ill-conditioned (power iteration may mix close eigenvalues).
        prop_assume!(full.eigenvalues[0] > full.eigenvalues[1] * 1.05 + 1e-6);
        let top = flare_linalg::eigen::symmetric_eigen_top_k(&g, 2).unwrap();
        let scale = full.eigenvalues[0].max(1.0);
        prop_assert!((top.eigenvalues[0] - full.eigenvalues[0]).abs() / scale < 1e-6);
    }
}
