//! Fig. 3a: machine occupancy characteristics of the scenario corpus,
//! sorted by total occupancy (step-like because containers are 4 vCPUs).

use flare_bench::{banner, ExperimentContext};

fn main() {
    banner("Machine occupancy characteristics of the corpus", "Fig. 3a");
    let ctx = ExperimentContext::standard();
    let vcpus = ctx.baseline.schedulable_vcpus();

    let mut rows: Vec<(f64, f64, f64)> = ctx
        .corpus
        .entries()
        .iter()
        .map(|e| {
            let hp = e.scenario.hp_vcpus() as f64 / vcpus as f64;
            let lp = e.scenario.lp_vcpus() as f64 / vcpus as f64;
            (hp + lp, hp, lp)
        })
        .collect();
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    println!("\n{} distinct job co-location scenarios", rows.len());
    println!("(sorted by total occupancy; showing every 40th)");
    println!("  {:>6} {:>8} {:>8} {:>8}", "rank", "total", "HP", "LP");
    for (i, (t, hp, lp)) in rows.iter().enumerate() {
        if i % 40 == 0 || i + 1 == rows.len() {
            println!("  {:>6} {:>8.3} {:>8.3} {:>8.3}", i, t, hp, lp);
        }
    }
    let distinct_levels: std::collections::BTreeSet<u64> = rows
        .iter()
        .map(|r| (r.0 * vcpus as f64).round() as u64)
        .collect();
    println!(
        "\nstep pattern: {} distinct occupancy levels (containers are fixed 4-vCPU units)",
        distinct_levels.len()
    );
}
