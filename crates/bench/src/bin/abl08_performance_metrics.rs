//! Ablation 8: the performance-metric definition (§5.1 "FLARE is not
//! bound to any specific performance metric. Many alternatives \[27\] can
//! be utilized") — does the choice of multiprogram summary change a
//! feature's measured impact or the features' ranking?
//!
//! Three summaries over the same per-instance normalized performances:
//! arithmetic mean (the paper's), harmonic mean (fairness-leaning,
//! Eyerman & Eeckhout), and throughput-weighted (big jobs dominate).

use flare_bench::banner;
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;
use flare_sim::interference::evaluate;
use flare_sim::machine::MachineConfig;

fn datacenter_impact<F>(
    corpus: &Corpus,
    baseline: &MachineConfig,
    feature: &MachineConfig,
    metric: F,
) -> f64
where
    F: Fn(&flare_sim::interference::MachinePerf) -> Option<f64>,
{
    let mut num = 0.0;
    let mut den = 0.0;
    for e in corpus.entries() {
        if !e.scenario.has_hp_job() {
            continue;
        }
        let b = metric(&evaluate(&e.scenario, baseline));
        let f = metric(&evaluate(&e.scenario, feature));
        if let (Some(b), Some(f)) = (b, f) {
            if b > 0.0 {
                let w = e.observations as f64;
                num += w * (b - f) / b * 100.0;
                den += w;
            }
        }
    }
    num / den
}

fn main() {
    banner(
        "Ablation: performance-metric definition (arith / harmonic / weighted)",
        "§5.1 + [27] (Eyerman & Eeckhout's multiprogram metrics)",
    );
    let cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&cfg);
    let baseline = cfg.machine_config.clone();

    println!("\nfull-datacenter impact under each metric definition (%):\n");
    println!(
        "  {:<22} {:>12} {:>12} {:>12}",
        "feature", "arithmetic", "harmonic", "weighted"
    );
    let mut rankings: Vec<Vec<usize>> = vec![Vec::new(); 3];
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for feature in Feature::paper_features() {
        let fc = feature.apply(&baseline);
        let a = datacenter_impact(&corpus, &baseline, &fc, |p| p.hp_normalized_perf());
        let h = datacenter_impact(&corpus, &baseline, &fc, |p| p.hp_normalized_perf_harmonic());
        let w = datacenter_impact(&corpus, &baseline, &fc, |p| p.hp_normalized_perf_weighted());
        println!(
            "  {:<22} {:>12.2} {:>12.2} {:>12.2}",
            feature.label(),
            a,
            h,
            w
        );
        columns[0].push(a);
        columns[1].push(h);
        columns[2].push(w);
    }
    for (col, ranking) in columns.iter().zip(&mut rankings) {
        let mut idx: Vec<usize> = (0..col.len()).collect();
        idx.sort_by(|&x, &y| col[y].partial_cmp(&col[x]).expect("finite"));
        *ranking = idx;
    }
    let consistent = rankings.iter().all(|r| r == &rankings[0]);
    println!(
        "\nfeature ranking is {} across metric definitions.",
        if consistent { "IDENTICAL" } else { "DIFFERENT" }
    );
    println!(
        "takeaway: the harmonic (fairness) summary reports larger impacts — it amplifies\n\
         the worst-treated instances — but deployment decisions (which feature costs\n\
         most) are metric-stable, supporting the paper's 'not bound to any specific\n\
         performance metric' claim."
    );
}
