//! Fig. 11: the per-cluster (representative-scenario) impact of the three
//! features — groups respond differently to the same feature.

use flare_bench::{banner, ExperimentContext};
use flare_core::interpret::distinguishing_pcs;
use flare_sim::feature::Feature;

fn main() {
    banner(
        "MIPS reduction estimated from each representative scenario",
        "Fig. 11",
    );
    let ctx = ExperimentContext::standard();
    let features = Feature::paper_features();

    let estimates: Vec<_> = features
        .iter()
        .map(|f| ctx.flare.evaluate(f).expect("estimate"))
        .collect();

    println!(
        "\n  {:>7} {:>8} {:>10} {:>10} {:>10}",
        "cluster", "weight%", "F1 %", "F2 %", "F3 %"
    );
    for c in 0..ctx.flare.analyzer().n_clusters() {
        let row: Vec<Option<f64>> = estimates
            .iter()
            .map(|e| {
                e.clusters
                    .iter()
                    .find(|ci| ci.cluster == c)
                    .map(|ci| ci.impact_pct)
            })
            .collect();
        let weight = estimates[0]
            .clusters
            .iter()
            .find(|ci| ci.cluster == c)
            .map(|ci| ci.weight * 100.0)
            .unwrap_or(0.0);
        let fmt = |v: Option<f64>| match v {
            Some(x) => format!("{x:>10.2}"),
            None => format!("{:>10}", "-"),
        };
        println!(
            "  {:>7} {:>8.2} {} {} {}",
            c,
            weight,
            fmt(row[0]),
            fmt(row[1]),
            fmt(row[2])
        );
    }

    // The §5.2 reasoning example: the cluster hit hardest by Feature 1
    // should be distinguishable by LLC-related PCs.
    let worst = estimates[0]
        .clusters
        .iter()
        .max_by(|a, b| a.impact_pct.partial_cmp(&b.impact_pct).expect("finite"))
        .expect("clusters");
    println!(
        "\ncluster most sensitive to Feature 1 (cache sizing): cluster {} at {:.2}%",
        worst.cluster, worst.impact_pct
    );
    let pcs = distinguishing_pcs(ctx.flare.analyzer(), worst.cluster, 3);
    let desc: Vec<String> = pcs
        .iter()
        .map(|(pc, v)| format!("PC{pc}={v:+.1}σ"))
        .collect();
    println!(
        "its distinguishing PCs: {} (see fig08 for their meanings)",
        desc.join(", ")
    );
}
