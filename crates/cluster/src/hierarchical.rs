//! Agglomerative hierarchical clustering (Ward linkage).
//!
//! The paper notes (§4.4) that K-means is its clustering of choice but that
//! "alternatives (e.g., hierarchical clustering of [74, 80]) can also be
//! applied". This module provides that alternative so the ablation bench
//! can compare the two.

use crate::distance::squared_euclidean;
use crate::error::{ClusterError, Result};
use crate::kernel::PairwiseDistances;
use flare_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// Linkage criterion for merging clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Linkage {
    /// Ward's minimum-variance criterion (default; matches K-means' SSE
    /// objective most closely).
    Ward,
    /// Minimum pairwise distance between members ("single link").
    Single,
    /// Maximum pairwise distance between members ("complete link").
    Complete,
    /// Mean pairwise distance between members ("average link", UPGMA).
    Average,
}

/// One merge step in the dendrogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    /// First merged cluster id (see [`Dendrogram`] id space).
    pub left: usize,
    /// Second merged cluster id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves under the merged cluster.
    pub size: usize,
}

/// A full agglomeration history.
///
/// Cluster ids follow scipy's convention: leaves are `0..n`, the i-th merge
/// creates cluster `n + i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of original observations.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence, in order of increasing linkage distance.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram to produce exactly `k` flat clusters, returning
    /// an assignment vector with labels in `0..k` (relabeled densely in
    /// order of first appearance).
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::TooFewPoints`] if `k > n_leaves` and
    /// [`ClusterError::InvalidParameter`] if `k == 0`.
    pub fn cut(&self, k: usize) -> Result<Vec<usize>> {
        if k == 0 {
            return Err(ClusterError::InvalidParameter("cut with k = 0".into()));
        }
        if k > self.n_leaves {
            return Err(ClusterError::TooFewPoints {
                points: self.n_leaves,
                k,
            });
        }
        // Apply the first n - k merges with a union-find.
        let mut parent: Vec<usize> = (0..self.n_leaves + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().take(self.n_leaves - k).enumerate() {
            let new_id = self.n_leaves + i;
            let l = find(&mut parent, m.left);
            let r = find(&mut parent, m.right);
            parent[l] = new_id;
            parent[r] = new_id;
        }
        // Densely relabel roots.
        let mut labels = Vec::with_capacity(self.n_leaves);
        let mut map: Vec<(usize, usize)> = Vec::new();
        for leaf in 0..self.n_leaves {
            let root = find(&mut parent, leaf);
            let label = match map.iter().find(|(r, _)| *r == root) {
                Some(&(_, l)) => l,
                None => {
                    let l = map.len();
                    map.push((root, l));
                    l
                }
            };
            labels.push(label);
        }
        Ok(labels)
    }
}

/// Builds a dendrogram over the rows of `data` with the given linkage.
///
/// Uses the O(n³) naive algorithm with a cached distance matrix and
/// Lance–Williams updates — fine for the ≤1 000-scenario corpora FLARE
/// handles.
///
/// # Errors
///
/// - [`ClusterError::TooFewPoints`] if `data` has no rows.
/// - [`ClusterError::NonFinite`] if `data` contains NaN/∞.
pub fn agglomerative(data: &Matrix, linkage: Linkage) -> Result<Dendrogram> {
    let n = data.nrows();
    if n == 0 {
        return Err(ClusterError::TooFewPoints { points: 0, k: 1 });
    }
    if !data.is_finite() {
        return Err(ClusterError::NonFinite("agglomerative input".into()));
    }

    // active[i] = Some(cluster id); dist is a dense symmetric matrix over
    // *slots* (slot i initially holds leaf i; merged clusters reuse the
    // lower slot).
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut sizes: Vec<usize> = vec![1; n];
    let mut active: Vec<bool> = vec![true; n];
    // The initial fill goes through the shared pairwise-distance kernel
    // (chunked across workers; every thread count yields identical bits),
    // then expands into the dense symmetric matrix the Lance–Williams
    // updates mutate in place.
    let pairwise = PairwiseDistances::compute_with(data, None, |a, b| match linkage {
        // Ward works on squared distances internally.
        Linkage::Ward => squared_euclidean(a, b) / 2.0,
        _ => squared_euclidean(a, b).sqrt(),
    });
    let mut dist = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = pairwise.get(i, j);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair.
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if !active[j] {
                    continue;
                }
                let d = dist[i * n + j];
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, d) = best;
        let merged_size = sizes[i] + sizes[j];
        merges.push(Merge {
            left: cluster_id[i],
            right: cluster_id[j],
            distance: if linkage == Linkage::Ward {
                d.sqrt()
            } else {
                d
            },
            size: merged_size,
        });

        // Lance–Williams update of distances from the merged cluster
        // (stored in slot i) to every other active slot.
        for m in 0..n {
            if !active[m] || m == i || m == j {
                continue;
            }
            let dim = dist[i * n + m];
            let djm = dist[j * n + m];
            let new = match linkage {
                Linkage::Single => dim.min(djm),
                Linkage::Complete => dim.max(djm),
                Linkage::Average => {
                    (sizes[i] as f64 * dim + sizes[j] as f64 * djm) / merged_size as f64
                }
                Linkage::Ward => {
                    let si = sizes[i] as f64;
                    let sj = sizes[j] as f64;
                    let sm = sizes[m] as f64;
                    let t = si + sj + sm;
                    ((si + sm) * dim + (sj + sm) * djm - sm * d) / t
                }
            };
            dist[i * n + m] = new;
            dist[m * n + i] = new;
        }
        active[j] = false;
        sizes[i] = merged_size;
        cluster_id[i] = n + step;
    }

    Ok(Dendrogram {
        n_leaves: n,
        merges,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.3, 0.1],
            vec![0.1, 0.2],
            vec![10.0, 10.0],
            vec![10.3, 10.1],
            vec![10.1, 10.2],
            vec![20.0, 0.0],
            vec![20.3, 0.1],
        ])
        .unwrap()
    }

    #[test]
    fn ward_recovers_blobs_at_k3() {
        let d = agglomerative(&blobs(), Linkage::Ward).unwrap();
        let labels = d.cut(3).unwrap();
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_eq!(labels[3], labels[5]);
        assert_eq!(labels[6], labels[7]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[6]);
        assert_ne!(labels[3], labels[6]);
    }

    #[test]
    fn all_linkages_produce_full_dendrogram() {
        for link in [
            Linkage::Ward,
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
        ] {
            let d = agglomerative(&blobs(), link).unwrap();
            assert_eq!(d.n_leaves(), 8);
            assert_eq!(d.merges().len(), 7);
            // Labels for any k are dense 0..k.
            for k in 1..=8 {
                let labels = d.cut(k).unwrap();
                let mut distinct = labels.clone();
                distinct.sort_unstable();
                distinct.dedup();
                assert_eq!(distinct.len(), k, "linkage {link:?} k {k}");
            }
        }
    }

    #[test]
    fn cut_k1_is_single_cluster() {
        let d = agglomerative(&blobs(), Linkage::Ward).unwrap();
        let labels = d.cut(1).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn cut_kn_is_all_singletons() {
        let d = agglomerative(&blobs(), Linkage::Ward).unwrap();
        let labels = d.cut(8).unwrap();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
    }

    #[test]
    fn single_linkage_merge_distances_nondecreasing() {
        // Single link has the monotonicity property.
        let d = agglomerative(&blobs(), Linkage::Single).unwrap();
        for w in d.merges().windows(2) {
            assert!(w[1].distance >= w[0].distance - 1e-12);
        }
    }

    #[test]
    fn validates_input() {
        let empty = Matrix::zeros(0, 2);
        assert!(agglomerative(&empty, Linkage::Ward).is_err());
        let nan = Matrix::from_rows(&[vec![f64::NAN]]).unwrap();
        assert!(agglomerative(&nan, Linkage::Ward).is_err());
        let d = agglomerative(&blobs(), Linkage::Ward).unwrap();
        assert!(d.cut(0).is_err());
        assert!(d.cut(9).is_err());
    }

    #[test]
    fn one_point_dendrogram() {
        let data = Matrix::from_rows(&[vec![1.0]]).unwrap();
        let d = agglomerative(&data, Linkage::Ward).unwrap();
        assert_eq!(d.merges().len(), 0);
        assert_eq!(d.cut(1).unwrap(), vec![0]);
    }
}
