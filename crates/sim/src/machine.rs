//! Machine shapes and runtime configurations.
//!
//! A [`MachineShape`] is the hardware a machine is built from (Table 2 /
//! Table 5); a [`MachineConfig`] is the shape plus the tunables a *feature*
//! can change without altering the shape — LLC allocation, DVFS limits and
//! SMT (Table 4). The paper restricts FLARE to features that do not change
//! the machine's shape (§2), which is exactly the shape/config split here.

use serde::{Deserialize, Serialize};

/// Static hardware description of one datacenter machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineShape {
    /// Human-readable model name.
    pub model: String,
    /// CPU sockets.
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Logical CPUs per socket with SMT enabled (2 × cores).
    pub vcpus_per_socket: u32,
    /// Last-level cache per socket, MB.
    pub llc_mb_per_socket: f64,
    /// DRAM capacity, GB.
    pub dram_gb: f64,
    /// Aggregate DRAM bandwidth, GB/s.
    pub dram_bw_gbps: f64,
    /// Minimum core frequency, GHz.
    pub freq_min_ghz: f64,
    /// Maximum (turbo) core frequency, GHz.
    pub freq_max_ghz: f64,
    /// Disk streaming throughput, MB/s.
    pub disk_mbps: f64,
    /// NIC line rate, Gb/s.
    pub nic_gbps: f64,
}

impl MachineShape {
    /// The paper's default machine (Table 2): 2 × Xeon E5-2650 v4.
    ///
    /// 24 vCPUs/socket = 12 physical cores × 2 SMT threads. Four DDR4-2400
    /// channels/socket ≈ 76.8 GB/s peak; we model ~90 % of peak as usable.
    pub fn default_shape() -> Self {
        MachineShape {
            model: "Intel Xeon E5-2650 v4 (2S)".into(),
            sockets: 2,
            cores_per_socket: 12,
            vcpus_per_socket: 24,
            llc_mb_per_socket: 30.0,
            dram_gb: 256.0,
            dram_bw_gbps: 69.0,
            freq_min_ghz: 1.2,
            freq_max_ghz: 2.9,
            disk_mbps: 550.0,
            nic_gbps: 10.0,
        }
    }

    /// The paper's "Small" machine (Table 5): 2 × Xeon E5-2640 v3.
    ///
    /// 16 vCPUs/socket = 8 cores × 2 SMT threads, 20 MB LLC/socket,
    /// 128 GB DDR4-2133 (≈61 GB/s usable).
    pub fn small_shape() -> Self {
        MachineShape {
            model: "Intel Xeon E5-2640 v3 (2S)".into(),
            sockets: 2,
            cores_per_socket: 8,
            vcpus_per_socket: 16,
            llc_mb_per_socket: 20.0,
            dram_gb: 128.0,
            dram_bw_gbps: 55.0,
            freq_min_ghz: 1.2,
            freq_max_ghz: 2.6,
            disk_mbps: 520.0,
            nic_gbps: 10.0,
        }
    }

    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total logical CPUs with SMT enabled.
    pub fn total_vcpus(&self) -> u32 {
        self.sockets * self.vcpus_per_socket
    }

    /// Total LLC across sockets, MB.
    pub fn total_llc_mb(&self) -> f64 {
        self.sockets as f64 * self.llc_mb_per_socket
    }

    /// The baseline runtime configuration (no feature applied).
    pub fn baseline_config(&self) -> MachineConfig {
        MachineConfig {
            shape: self.clone(),
            llc_mb_per_socket: self.llc_mb_per_socket,
            freq_min_ghz: self.freq_min_ghz,
            freq_max_ghz: self.freq_max_ghz,
            smt_enabled: true,
        }
    }
}

/// A machine's runtime configuration: shape + feature-tunable knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The underlying hardware.
    pub shape: MachineShape,
    /// LLC made available per socket (CAT-style allocation), MB.
    pub llc_mb_per_socket: f64,
    /// DVFS floor, GHz.
    pub freq_min_ghz: f64,
    /// DVFS ceiling, GHz.
    pub freq_max_ghz: f64,
    /// Whether hyper-threading is enabled.
    pub smt_enabled: bool,
}

impl MachineConfig {
    /// Logical CPUs the scheduler can place work on under this config.
    pub fn schedulable_vcpus(&self) -> u32 {
        if self.smt_enabled {
            self.shape.total_vcpus()
        } else {
            self.shape.total_cores()
        }
    }

    /// Total usable LLC across sockets, MB.
    pub fn total_llc_mb(&self) -> f64 {
        self.shape.sockets as f64 * self.llc_mb_per_socket
    }

    /// Achieved core frequency (GHz) when `active_cores` of
    /// `total_cores` are busy — a simple power-budget turbo model: an idle
    /// chip turbos to `freq_max`; a fully-busy chip drops ~15 % of the
    /// min→max span, never below `freq_min`.
    pub fn achieved_freq_ghz(&self, active_fraction: f64) -> f64 {
        let af = active_fraction.clamp(0.0, 1.0);
        let droop = 0.15 * (self.freq_max_ghz - self.freq_min_ghz);
        (self.freq_max_ghz - droop * af).max(self.freq_min_ghz)
    }

    /// `true` if this config only differs from the shape's baseline by
    /// allowed feature knobs (always true by construction, but validates
    /// hand-built configs).
    pub fn is_valid(&self) -> bool {
        self.llc_mb_per_socket > 0.0
            && self.llc_mb_per_socket <= self.shape.llc_mb_per_socket
            && self.freq_min_ghz >= self.shape.freq_min_ghz - 1e-9
            && self.freq_max_ghz <= self.shape.freq_max_ghz + 1e-9
            && self.freq_min_ghz <= self.freq_max_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_default_shape() {
        let s = MachineShape::default_shape();
        assert_eq!(s.total_vcpus(), 48);
        assert_eq!(s.total_cores(), 24);
        assert_eq!(s.total_llc_mb(), 60.0);
        assert_eq!(s.freq_max_ghz, 2.9);
    }

    #[test]
    fn table5_small_shape_is_smaller() {
        let d = MachineShape::default_shape();
        let s = MachineShape::small_shape();
        assert!(s.total_vcpus() < d.total_vcpus());
        assert!(s.total_llc_mb() < d.total_llc_mb());
        assert!(s.dram_gb < d.dram_gb);
        assert!(s.dram_bw_gbps < d.dram_bw_gbps);
    }

    #[test]
    fn baseline_config_is_valid_and_full_strength() {
        let c = MachineShape::default_shape().baseline_config();
        assert!(c.is_valid());
        assert_eq!(c.schedulable_vcpus(), 48);
        assert_eq!(c.total_llc_mb(), 60.0);
        assert!(c.smt_enabled);
    }

    #[test]
    fn smt_off_halves_schedulable_cpus() {
        let mut c = MachineShape::default_shape().baseline_config();
        c.smt_enabled = false;
        assert_eq!(c.schedulable_vcpus(), 24);
    }

    #[test]
    fn turbo_droops_with_activity_but_respects_floor() {
        let c = MachineShape::default_shape().baseline_config();
        let idle = c.achieved_freq_ghz(0.0);
        let busy = c.achieved_freq_ghz(1.0);
        assert_eq!(idle, 2.9);
        assert!(busy < idle);
        assert!(busy >= c.freq_min_ghz);
        // Clamping out-of-range activity.
        assert_eq!(c.achieved_freq_ghz(-1.0), idle);
        assert_eq!(c.achieved_freq_ghz(2.0), busy);
    }

    #[test]
    fn capped_config_respects_cap() {
        let mut c = MachineShape::default_shape().baseline_config();
        c.freq_max_ghz = 1.8;
        assert!(c.is_valid());
        assert!(c.achieved_freq_ghz(0.0) <= 1.8);
    }

    #[test]
    fn invalid_configs_detected() {
        let shape = MachineShape::default_shape();
        let mut c = shape.baseline_config();
        c.llc_mb_per_socket = 40.0; // more than the silicon has
        assert!(!c.is_valid());
        let mut c = shape.baseline_config();
        c.freq_max_ghz = 3.5;
        assert!(!c.is_valid());
        let mut c = shape.baseline_config();
        c.freq_min_ghz = 2.0;
        c.freq_max_ghz = 1.5;
        assert!(!c.is_valid());
    }
}
