//! Feature performance estimation from representative scenarios (§4.5 and
//! the per-job extension of §5.3).

use crate::analyzer::Analyzer;
use crate::error::{FlareError, Result};
use crate::replayer::{replay_impact, replay_job_impact, Testbed};
use flare_metrics::database::ScenarioId;
use flare_sim::datacenter::Corpus;
use flare_sim::machine::MachineConfig;
use flare_workloads::job::JobName;
use serde::{Deserialize, Serialize};

/// Impact measured on one cluster's representative (a bar of Fig. 11).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterImpact {
    /// Cluster index.
    pub cluster: usize,
    /// Scenario actually replayed (the representative, or the nearest
    /// ranked member that carried HP jobs / the job of interest).
    pub scenario: ScenarioId,
    /// How many ranked members were skipped before a usable scenario was
    /// found (0 = the representative itself).
    pub fallback_depth: usize,
    /// The cluster's weight in the aggregate.
    pub weight: f64,
    /// Measured MIPS reduction, %.
    pub impact_pct: f64,
}

/// The all-HP-job estimate of a feature's impact (Fig. 12a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllJobEstimate {
    /// Weighted-average MIPS reduction, %.
    pub impact_pct: f64,
    /// Per-cluster breakdown.
    pub clusters: Vec<ClusterImpact>,
    /// Number of distinct scenario replays the estimate cost (the
    /// evaluation-overhead unit of Fig. 13).
    pub replay_count: usize,
}

/// A per-job estimate (Fig. 12b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerJobEstimate {
    /// The HP job estimated.
    pub job: JobName,
    /// Weighted-average MIPS reduction for the job, %.
    pub impact_pct: f64,
    /// Per-cluster breakdown (clusters whose population lacks the job are
    /// absent).
    pub clusters: Vec<ClusterImpact>,
}

/// Estimates a feature's overall impact on HP jobs from the representative
/// scenarios: replay each representative under baseline and feature
/// configs, then weight the impacts by group size (§4.5).
///
/// Representatives whose scenario carries no HP job (possible for LP-only
/// groups) fall back to the next-nearest member with HP jobs; groups with
/// no HP scenarios at all are skipped and the weights renormalized.
///
/// # Errors
///
/// Returns [`FlareError::InsufficientData`] if no cluster yields a usable
/// measurement.
pub fn estimate_all_job<T: Testbed>(
    corpus: &Corpus,
    analyzer: &Analyzer,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> Result<AllJobEstimate> {
    let weights = analyzer.cluster_weights(weight_by_observations);
    let mut clusters = Vec::new();
    let mut replay_count = 0usize;

    for (c, &weight) in weights.iter().enumerate() {
        let ranked = analyzer.ranked(c);
        let mut found = None;
        for (depth, id) in ranked.iter().enumerate() {
            let entry = corpus
                .get(*id)
                .ok_or_else(|| FlareError::InsufficientData(format!("{id} not in corpus")))?;
            if !entry.scenario.has_hp_job() {
                continue;
            }
            replay_count += 1;
            if let Some(impact) = replay_impact(testbed, &entry.scenario, baseline, feature_config)
            {
                found = Some((depth, *id, impact));
            }
            break;
        }
        if let Some((depth, id, impact)) = found {
            clusters.push(ClusterImpact {
                cluster: c,
                scenario: id,
                fallback_depth: depth,
                weight,
                impact_pct: impact,
            });
        }
    }

    if clusters.is_empty() {
        return Err(FlareError::InsufficientData(
            "no cluster produced an HP measurement".into(),
        ));
    }
    // Renormalize over contributing clusters.
    let total_w: f64 = clusters.iter().map(|c| c.weight).sum();
    let impact_pct = if total_w > 0.0 {
        clusters
            .iter()
            .map(|c| c.weight * c.impact_pct)
            .sum::<f64>()
            / total_w
    } else {
        0.0
    };
    Ok(AllJobEstimate {
        impact_pct,
        clusters,
        replay_count,
    })
}

/// Estimates a feature's impact on one specific HP job (§5.3): within each
/// cluster, walk the centroid-distance ranking until a scenario containing
/// the job is found; weight cluster contributions by the number of job
/// instances the cluster's population holds.
///
/// # Errors
///
/// Returns [`FlareError::JobNotObserved`] if no clustered scenario
/// contains the job.
pub fn estimate_per_job<T: Testbed>(
    corpus: &Corpus,
    analyzer: &Analyzer,
    testbed: &T,
    job: JobName,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    weight_by_observations: bool,
) -> Result<PerJobEstimate> {
    let mut clusters = Vec::new();

    for c in 0..analyzer.n_clusters() {
        let ranked = analyzer.ranked(c);
        // Cluster weight for this job: instances of the job in the whole
        // group population ("the likelihood to observe the job").
        let mut job_instances = 0.0;
        for id in &ranked {
            if let Some(e) = corpus.get(*id) {
                let mult = if weight_by_observations {
                    e.observations as f64
                } else {
                    1.0
                };
                job_instances += e.scenario.instances_of(job) as f64 * mult;
            }
        }
        if job_instances <= 0.0 {
            continue;
        }
        for (depth, id) in ranked.iter().enumerate() {
            let entry = match corpus.get(*id) {
                Some(e) => e,
                None => continue,
            };
            if !entry.scenario.has_job(job) {
                continue;
            }
            if let Some(impact) =
                replay_job_impact(testbed, &entry.scenario, job, baseline, feature_config)
            {
                clusters.push(ClusterImpact {
                    cluster: c,
                    scenario: *id,
                    fallback_depth: depth,
                    weight: job_instances,
                    impact_pct: impact,
                });
            }
            break;
        }
    }

    if clusters.is_empty() {
        return Err(FlareError::JobNotObserved(job.abbrev().to_string()));
    }
    let total_w: f64 = clusters.iter().map(|c| c.weight).sum();
    let impact_pct = clusters
        .iter()
        .map(|c| c.weight * c.impact_pct)
        .sum::<f64>()
        / total_w;
    // Normalize stored weights to shares for reporting.
    let clusters = clusters
        .into_iter()
        .map(|mut c| {
            c.weight /= total_w;
            c
        })
        .collect();
    Ok(PerJobEstimate {
        job,
        impact_pct,
        clusters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::Analyzer;
    use crate::config::{ClusterCountRule, FlareConfig};
    use crate::replayer::SimTestbed;
    use flare_sim::datacenter::{Corpus, CorpusConfig};
    use flare_sim::feature::Feature;

    fn small_setup() -> (Corpus, Analyzer, MachineConfig) {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let corpus = Corpus::generate(&cfg);
        let db = corpus.to_metric_database(&cfg.machine_config);
        let flare_cfg = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(10),
            ..FlareConfig::default()
        };
        let analyzer = Analyzer::fit(&db, &flare_cfg).unwrap();
        (corpus, analyzer, cfg.machine_config)
    }

    #[test]
    fn all_job_estimate_is_sane() {
        let (corpus, analyzer, baseline) = small_setup();
        let f2 = Feature::paper_feature2().apply(&baseline);
        let est = estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &f2, true).unwrap();
        assert!(
            est.impact_pct > 3.0 && est.impact_pct < 40.0,
            "DVFS impact {}%",
            est.impact_pct
        );
        assert!(!est.clusters.is_empty());
        assert!(est.replay_count <= analyzer.n_clusters() + 5);
        // Weighted average lies within the per-cluster range.
        let lo = est
            .clusters
            .iter()
            .map(|c| c.impact_pct)
            .fold(f64::INFINITY, f64::min);
        let hi = est
            .clusters
            .iter()
            .map(|c| c.impact_pct)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(est.impact_pct >= lo - 1e-9 && est.impact_pct <= hi + 1e-9);
    }

    #[test]
    fn baseline_feature_estimates_zero() {
        let (corpus, analyzer, baseline) = small_setup();
        let est =
            estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &baseline, true).unwrap();
        assert!(est.impact_pct.abs() < 1e-9);
    }

    #[test]
    fn per_job_estimates_exist_for_common_jobs() {
        let (corpus, analyzer, baseline) = small_setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        for &job in JobName::HIGH_PRIORITY {
            let est = estimate_per_job(&corpus, &analyzer, &SimTestbed, job, &baseline, &f1, true);
            // All 8 HP services run continuously in the corpus.
            let est = est.unwrap_or_else(|e| panic!("{job}: {e}"));
            assert!(est.impact_pct.is_finite());
            let wsum: f64 = est.clusters.iter().map(|c| c.weight).sum();
            assert!((wsum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn per_job_fallback_depth_recorded() {
        let (corpus, analyzer, baseline) = small_setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let est = estimate_per_job(
            &corpus,
            &analyzer,
            &SimTestbed,
            JobName::MediaStreaming,
            &baseline,
            &f1,
            true,
        )
        .unwrap();
        // Depths are valid indices into each cluster's ranking.
        for c in &est.clusters {
            assert!(c.fallback_depth < analyzer.ranked(c.cluster).len());
        }
    }

    #[test]
    fn unobserved_job_errors() {
        // LP jobs are never HP-measured, so asking for one must fail with
        // JobNotObserved (they're filtered from per-job measurements).
        let (corpus, analyzer, baseline) = small_setup();
        let f1 = Feature::paper_feature1().apply(&baseline);
        let est = estimate_per_job(
            &corpus,
            &analyzer,
            &SimTestbed,
            JobName::Mcf,
            &baseline,
            &f1,
            true,
        );
        assert!(est.is_err());
    }
}
