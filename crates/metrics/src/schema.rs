//! The raw metric schema: which performance/resource counters the Profiler
//! collects, at which level.
//!
//! FLARE collects metrics **two-level** (§4.2, Fig. 6): once aggregated over
//! the whole machine (`*-Machine`) and once over the High-Priority jobs only
//! (`*-HP`). The paper gathers 100+ raw metrics from `perf`, Intel top-down
//! counters and the `/proc` filesystem; this module enumerates the same
//! families. Several metrics are (deliberately) derivable from others —
//! e.g. memory bandwidth is LLC-miss count × line size — because the
//! refinement step's job is to detect and prune exactly that redundancy.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The collection level of a metric (§4.2's two-level collection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Level {
    /// Aggregated over every job on the machine (the running environment).
    Machine,
    /// Aggregated over the High-Priority jobs only (the jobs of interest).
    Hp,
}

impl Level {
    /// The suffix used in the paper's metric naming (`LLC-APKI-Machine`).
    pub fn suffix(self) -> &'static str {
        match self {
            Level::Machine => "Machine",
            Level::Hp => "HP",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// Broad family a metric belongs to (the grouping of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricFamily {
    /// Instruction throughput metrics.
    Performance,
    /// Intel top-down pipeline-slot breakdown.
    Topdown,
    /// Cache hierarchy counters.
    Cache,
    /// Main-memory traffic and latency.
    Memory,
    /// Address-translation counters.
    Tlb,
    /// Branch prediction counters.
    Branch,
    /// CPU scheduling / utilization (software view).
    Cpu,
    /// Storage I/O (software view).
    Storage,
    /// Network I/O (software view).
    Network,
    /// OS-level memory management (software view).
    OsMemory,
    /// Per-job colocation-mix columns (§5.3's optional per-job metrics).
    JobMix,
}

macro_rules! metric_kinds {
    ($( $(#[$doc:meta])* $variant:ident => ($name:literal, $family:ident, $derived:literal) ),+ $(,)?) => {
        /// A raw metric kind, independent of collection level.
        ///
        /// `derived == true` marks metrics that are analytic functions of
        /// other metrics in the schema — the redundancy that the refinement
        /// step (§4.2) exists to prune.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub enum MetricKind {
            $( $(#[$doc])* $variant ),+
        }

        impl MetricKind {
            /// Every metric kind, in canonical order.
            pub const ALL: &'static [MetricKind] = &[ $( MetricKind::$variant ),+ ];

            /// The paper-style base name, e.g. `"LLC-MPKI"`.
            pub fn base_name(self) -> &'static str {
                match self { $( MetricKind::$variant => $name ),+ }
            }

            /// The family this metric belongs to.
            pub fn family(self) -> MetricFamily {
                match self { $( MetricKind::$variant => MetricFamily::$family ),+ }
            }

            /// `true` if the metric is an analytic function of other
            /// metrics in the schema (redundant by construction).
            pub fn is_derived(self) -> bool {
                match self { $( MetricKind::$variant => $derived ),+ }
            }
        }
    };
}

metric_kinds! {
    // ---- Performance -------------------------------------------------
    /// Million instructions per second — the paper's headline metric.
    Mips => ("MIPS", Performance, false),
    /// Instructions per cycle.
    Ipc => ("IPC", Performance, false),
    /// Cycles per instruction (reciprocal of IPC; redundant).
    Cpi => ("CPI", Performance, true),
    /// Micro-ops retired per cycle.
    UopsPerCycle => ("UOPS-PER-CYCLE", Performance, true),
    /// Core clock frequency actually achieved.
    FreqGhz => ("FREQ-GHZ", Performance, false),

    // ---- Top-down ----------------------------------------------------
    /// Fraction of pipeline slots stalled on the frontend.
    FrontendBound => ("TD-FRONTEND-BOUND", Topdown, false),
    /// Frontend stalls attributable to fetch latency (icache/ITLB).
    FetchLatency => ("TD-FETCH-LATENCY", Topdown, false),
    /// Frontend stalls attributable to fetch bandwidth.
    FetchBandwidth => ("TD-FETCH-BANDWIDTH", Topdown, true),
    /// Fraction of slots wasted on mis-speculation.
    BadSpeculation => ("TD-BAD-SPECULATION", Topdown, false),
    /// Fraction of slots stalled on the backend.
    BackendBound => ("TD-BACKEND-BOUND", Topdown, false),
    /// Backend stalls waiting on memory.
    MemoryBound => ("TD-MEMORY-BOUND", Topdown, false),
    /// Backend stalls bound on execution resources.
    CoreBound => ("TD-CORE-BOUND", Topdown, true),
    /// Fraction of slots doing useful retirement.
    Retiring => ("TD-RETIRING", Topdown, true),
    /// Stalls on ALU ports specifically.
    AluStalls => ("ALU-STALL-PCT", Topdown, false),
    /// Stalls on divider/long-latency units.
    DivStalls => ("DIV-STALL-PCT", Topdown, false),

    // ---- Cache hierarchy ----------------------------------------------
    /// L1 data-cache misses per kilo-instruction.
    L1dMpki => ("L1D-MPKI", Cache, false),
    /// L1 data-cache accesses per kilo-instruction.
    L1dApki => ("L1D-APKI", Cache, false),
    /// L1 instruction-cache misses per kilo-instruction.
    L1iMpki => ("L1I-MPKI", Cache, false),
    /// L2 misses per kilo-instruction.
    L2Mpki => ("L2-MPKI", Cache, false),
    /// L2 accesses per kilo-instruction (≈ L1 misses; redundant).
    L2Apki => ("L2-APKI", Cache, true),
    /// Last-level-cache misses per kilo-instruction.
    LlcMpki => ("LLC-MPKI", Cache, false),
    /// Last-level-cache accesses per kilo-instruction (≈ L2 misses).
    LlcApki => ("LLC-APKI", Cache, true),
    /// LLC hit rate (1 - misses/accesses; redundant).
    LlcHitRate => ("LLC-HIT-RATE", Cache, true),
    /// Estimated LLC occupancy in MB (from CMT-style monitoring).
    LlcOccupancyMb => ("LLC-OCCUPANCY-MB", Cache, false),

    // ---- Memory --------------------------------------------------------
    /// DRAM read bandwidth, GB/s (≈ LLC misses × 64 B; redundant).
    MemBwReadGbps => ("MEM-BW-RD-GBPS", Memory, true),
    /// DRAM write bandwidth, GB/s.
    MemBwWriteGbps => ("MEM-BW-WR-GBPS", Memory, true),
    /// Total DRAM bandwidth, GB/s (sum of the above; redundant).
    MemBwTotalGbps => ("MEM-BW-TOTAL-GBPS", Memory, true),
    /// Average loaded memory latency, ns.
    MemLatencyNs => ("MEM-LAT-NS", Memory, false),
    /// DRAM channel utilization fraction.
    DramUtil => ("DRAM-UTIL", Memory, true),

    // ---- TLB -----------------------------------------------------------
    /// Instruction-TLB misses per kilo-instruction.
    ItlbMpki => ("ITLB-MPKI", Tlb, false),
    /// Data-TLB misses per kilo-instruction.
    DtlbMpki => ("DTLB-MPKI", Tlb, false),
    /// Fraction of cycles spent in page walks.
    PageWalkPct => ("PAGE-WALK-PCT", Tlb, true),

    // ---- Branch ---------------------------------------------------------
    /// Branch mispredictions per kilo-instruction.
    BranchMpki => ("BRANCH-MPKI", Branch, false),
    /// Misprediction rate (misses / branches; redundant with MPKI).
    BranchMissRate => ("BRANCH-MISS-RATE", Branch, true),

    // ---- CPU (software) --------------------------------------------------
    /// CPU utilization fraction of the allocation.
    CpuUtil => ("CPU-UTIL", Cpu, false),
    /// Number of vCPUs with runnable work.
    VcpusActive => ("VCPUS-ACTIVE", Cpu, true),
    /// Context switches per second.
    ContextSwitchesPs => ("CTX-SWITCH-PS", Cpu, false),
    /// Mean run-queue length.
    RunqueueLen => ("RUNQUEUE-LEN", Cpu, true),
    /// Fraction of cycles where both SMT siblings were busy.
    SmtCoresidency => ("SMT-CORESIDENCY", Cpu, false),
    /// Involuntary preemptions per second.
    PreemptionsPs => ("PREEMPT-PS", Cpu, true),

    // ---- Storage ----------------------------------------------------------
    /// Disk read throughput, MB/s.
    DiskReadMbps => ("DISK-RD-MBPS", Storage, false),
    /// Disk write throughput, MB/s.
    DiskWriteMbps => ("DISK-WR-MBPS", Storage, false),
    /// Disk operations per second (≈ throughput / request size).
    DiskIops => ("DISK-IOPS", Storage, true),
    /// Fraction of time with outstanding I/O (iowait).
    IowaitPct => ("IOWAIT-PCT", Storage, true),

    // ---- Network ------------------------------------------------------------
    /// Network receive throughput, MB/s.
    NetRxMbps => ("NET-RX-MBPS", Network, false),
    /// Network transmit throughput, MB/s.
    NetTxMbps => ("NET-TX-MBPS", Network, false),
    /// Packets per second (≈ throughput / packet size; redundant).
    NetPps => ("NET-PPS", Network, true),
    /// TCP retransmissions per second.
    TcpRetransPs => ("TCP-RETRANS-PS", Network, false),

    // ---- OS memory -------------------------------------------------------------
    /// Resident set size, GB.
    RssGb => ("RSS-GB", OsMemory, false),
    /// Major page faults per second.
    MajorFaultsPs => ("MAJ-FAULT-PS", OsMemory, false),
    /// Minor page faults per second.
    MinorFaultsPs => ("MIN-FAULT-PS", OsMemory, true),
    /// Anonymous-memory fraction of RSS.
    AnonFraction => ("ANON-FRACTION", OsMemory, true),
    /// System calls per second.
    SyscallsPs => ("SYSCALL-PS", OsMemory, false),

    // ---- Per-job mix (§5.3 optional augmentation; excluded from the
    // ---- default pipeline unless per-job augmentation is enabled) -----
    /// Running Data Analytics instances.
    InstancesDa => ("INSTANCES-DA", JobMix, false),
    /// Running Data Caching instances.
    InstancesDc => ("INSTANCES-DC", JobMix, false),
    /// Running Data Serving instances.
    InstancesDs => ("INSTANCES-DS", JobMix, false),
    /// Running Graph Analytics instances.
    InstancesGa => ("INSTANCES-GA", JobMix, false),
    /// Running In-memory Analytics instances.
    InstancesIa => ("INSTANCES-IA", JobMix, false),
    /// Running Media Streaming instances.
    InstancesMs => ("INSTANCES-MS", JobMix, false),
    /// Running Web Search instances.
    InstancesWsc => ("INSTANCES-WSC", JobMix, false),
    /// Running Web Serving instances.
    InstancesWsv => ("INSTANCES-WSV", JobMix, false),
}

impl MetricKind {
    /// `true` for the per-job mix columns of §5.3's optional augmentation.
    pub fn is_job_mix(self) -> bool {
        self.family() == MetricFamily::JobMix
    }
}

/// Which statistic of a metric's time series is recorded (§4.1: the
/// default is the per-scenario average; a user "may include standard
/// deviations (e.g., IPC: 1.4±0.5) to enrich the temporal information").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Statistic {
    /// Average over the scenario's lifetime (the paper's default).
    #[default]
    Mean,
    /// Standard deviation across temporal phases (the §4.1 enrichment).
    StdDev,
}

impl Statistic {
    /// Name suffix: empty for the mean, `"-SD"` for the std-dev column.
    pub fn suffix(self) -> &'static str {
        match self {
            Statistic::Mean => "",
            Statistic::StdDev => "-SD",
        }
    }
}

/// A fully-qualified raw metric: kind + collection level + statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MetricId {
    /// The metric kind.
    pub kind: MetricKind,
    /// The collection level.
    pub level: Level,
    /// The recorded statistic (mean by default).
    #[serde(default)]
    pub stat: Statistic,
}

impl MetricId {
    /// Constructs a (mean-statistic) metric id.
    pub fn new(kind: MetricKind, level: Level) -> Self {
        MetricId {
            kind,
            level,
            stat: Statistic::Mean,
        }
    }

    /// Constructs a metric id with an explicit statistic.
    pub fn with_stat(kind: MetricKind, level: Level, stat: Statistic) -> Self {
        MetricId { kind, level, stat }
    }

    /// The paper-style qualified name, e.g. `"LLC-MPKI-HP"` or
    /// `"LLC-MPKI-HP-SD"`.
    pub fn name(&self) -> String {
        format!(
            "{}-{}{}",
            self.kind.base_name(),
            self.level.suffix(),
            self.stat.suffix()
        )
    }
}

impl fmt::Display for MetricId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// The full ordered schema of raw metrics the Profiler collects.
///
/// The canonical schema is every [`MetricKind`] at both levels — 106 raw
/// metrics, matching the paper's "100+ raw performance/resource metrics".
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSchema {
    ids: Vec<MetricId>,
}

impl MetricSchema {
    /// The canonical two-level schema over all metric kinds.
    ///
    /// # Examples
    ///
    /// ```
    /// let schema = flare_metrics::schema::MetricSchema::canonical();
    /// assert!(schema.len() > 100);
    /// ```
    pub fn canonical() -> Self {
        let mut ids = Vec::with_capacity(MetricKind::ALL.len() * 2);
        for &level in &[Level::Machine, Level::Hp] {
            for &kind in MetricKind::ALL {
                ids.push(MetricId::new(kind, level));
            }
        }
        MetricSchema { ids }
    }

    /// Indices of the schema's non-[`MetricFamily::JobMix`] columns — the
    /// default analysis set when §5.3 per-job augmentation is off.
    pub fn non_job_mix_indices(&self) -> Vec<usize> {
        self.ids
            .iter()
            .enumerate()
            .filter_map(|(i, id)| (!id.kind.is_job_mix()).then_some(i))
            .collect()
    }

    /// The temporally-enriched schema (§4.1): every canonical mean column
    /// followed by its standard-deviation column — 212 raw metrics.
    ///
    /// # Examples
    ///
    /// ```
    /// use flare_metrics::schema::MetricSchema;
    /// let enriched = MetricSchema::canonical_enriched();
    /// assert_eq!(enriched.len(), 2 * MetricSchema::canonical().len());
    /// ```
    pub fn canonical_enriched() -> Self {
        let base = Self::canonical();
        let mut ids = Vec::with_capacity(base.len() * 2);
        for id in base.ids() {
            ids.push(*id);
            ids.push(MetricId::with_stat(id.kind, id.level, Statistic::StdDev));
        }
        MetricSchema { ids }
    }

    /// A schema over an explicit id list (used after refinement).
    pub fn from_ids(ids: Vec<MetricId>) -> Self {
        MetricSchema { ids }
    }

    /// Number of metrics in the schema.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if the schema has no metrics.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The ordered metric ids.
    pub fn ids(&self) -> &[MetricId] {
        &self.ids
    }

    /// Position of `id` in the schema, if present.
    pub fn index_of(&self, id: MetricId) -> Option<usize> {
        self.ids.iter().position(|&x| x == id)
    }

    /// The metric id at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn id_at(&self, index: usize) -> MetricId {
        self.ids[index]
    }

    /// Qualified names in schema order.
    pub fn names(&self) -> Vec<String> {
        self.ids.iter().map(|id| id.name()).collect()
    }

    /// Restricts the schema to the given indices (preserving their order).
    pub fn subset(&self, indices: &[usize]) -> MetricSchema {
        MetricSchema {
            ids: indices.iter().map(|&i| self.ids[i]).collect(),
        }
    }
}

impl Default for MetricSchema {
    fn default() -> Self {
        MetricSchema::canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_schema_has_over_100_metrics() {
        let s = MetricSchema::canonical();
        assert!(s.len() > 100, "schema has {} metrics", s.len());
        assert_eq!(s.len(), MetricKind::ALL.len() * 2);
    }

    #[test]
    fn names_are_unique() {
        let s = MetricSchema::canonical();
        let mut names = s.names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn paper_style_names() {
        let id = MetricId::new(MetricKind::LlcApki, Level::Machine);
        assert_eq!(id.name(), "LLC-APKI-Machine");
        let id = MetricId::new(MetricKind::LlcApki, Level::Hp);
        assert_eq!(id.name(), "LLC-APKI-HP");
        assert_eq!(id.to_string(), "LLC-APKI-HP");
    }

    #[test]
    fn index_of_roundtrip() {
        let s = MetricSchema::canonical();
        for (i, &id) in s.ids().iter().enumerate() {
            assert_eq!(s.index_of(id), Some(i));
            assert_eq!(s.id_at(i), id);
        }
    }

    #[test]
    fn schema_contains_derived_metrics_for_refinement() {
        // The refinement step needs real redundancy to prune: at least 15
        // derived kinds must exist (paper prunes 100+ -> 85).
        let derived = MetricKind::ALL.iter().filter(|k| k.is_derived()).count();
        assert!(derived >= 15, "only {derived} derived metrics");
    }

    #[test]
    fn every_family_is_represented() {
        use MetricFamily::*;
        for fam in [
            Performance,
            Topdown,
            Cache,
            Memory,
            Tlb,
            Branch,
            Cpu,
            Storage,
            Network,
            OsMemory,
        ] {
            assert!(
                MetricKind::ALL.iter().any(|k| k.family() == fam),
                "family {fam:?} unrepresented"
            );
        }
    }

    #[test]
    fn subset_preserves_order() {
        let s = MetricSchema::canonical();
        let sub = s.subset(&[5, 2, 9]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.id_at(0), s.id_at(5));
        assert_eq!(sub.id_at(1), s.id_at(2));
        assert_eq!(sub.id_at(2), s.id_at(9));
    }

    #[test]
    fn enriched_schema_interleaves_stats() {
        let e = MetricSchema::canonical_enriched();
        assert_eq!(e.len(), MetricSchema::canonical().len() * 2);
        assert_eq!(e.id_at(0).stat, Statistic::Mean);
        assert_eq!(e.id_at(1).stat, Statistic::StdDev);
        assert_eq!(e.id_at(0).kind, e.id_at(1).kind);
        assert!(e.id_at(1).name().ends_with("-SD"));
        // Names stay unique.
        let mut names = e.names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn mean_id_name_has_no_suffix() {
        let id = MetricId::new(MetricKind::Ipc, Level::Hp);
        assert_eq!(id.name(), "IPC-HP");
        let sd = MetricId::with_stat(MetricKind::Ipc, Level::Hp, Statistic::StdDev);
        assert_eq!(sd.name(), "IPC-HP-SD");
    }

    #[test]
    fn serde_roundtrip() {
        let s = MetricSchema::canonical();
        let json = serde_json::to_string(&s).unwrap();
        let back: MetricSchema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
