//! Datacenter-improving features (Table 4).
//!
//! A feature transforms a machine's runtime configuration without changing
//! its shape — the class of changes FLARE targets (§2). The paper's three
//! evaluation features intentionally *reduce* machine capability so
//! degradations are easy to measure; any [`Feature`] works the same way.

use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A machine-shape-preserving configuration change.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Feature {
    /// No change: the Table 4 baseline (30 MB LLC, 1.2–2.9 GHz, SMT on).
    Baseline,
    /// Feature 1: cache sizing via CAT — restrict the LLC per socket.
    CacheSizing {
        /// LLC made available per socket, MB (paper: 12).
        llc_mb_per_socket: f64,
    },
    /// Feature 2: DVFS policy — cap the maximum frequency.
    DvfsCap {
        /// New frequency ceiling, GHz (paper: 1.8).
        freq_max_ghz: f64,
    },
    /// Feature 3: disable simultaneous multithreading.
    SmtOff,
    /// A compound feature: apply several in sequence (an extension beyond
    /// the paper's three, useful for ablations).
    Compound(Vec<Feature>),
}

impl Feature {
    /// The paper's Feature 1 (30 MB → 12 MB LLC per socket).
    pub fn paper_feature1() -> Self {
        Feature::CacheSizing {
            llc_mb_per_socket: 12.0,
        }
    }

    /// The paper's Feature 2 (2.9 GHz → 1.8 GHz ceiling).
    pub fn paper_feature2() -> Self {
        Feature::DvfsCap { freq_max_ghz: 1.8 }
    }

    /// The paper's Feature 3 (hyper-threading disabled).
    pub fn paper_feature3() -> Self {
        Feature::SmtOff
    }

    /// The three paper features in Table 4 order.
    pub fn paper_features() -> Vec<Feature> {
        vec![
            Self::paper_feature1(),
            Self::paper_feature2(),
            Self::paper_feature3(),
        ]
    }

    /// Applies the feature to a machine configuration, returning the new
    /// configuration. Knobs are clamped to physical limits (you cannot CAT
    /// more cache than the silicon has, nor raise the ceiling above turbo).
    pub fn apply(&self, config: &MachineConfig) -> MachineConfig {
        let mut out = config.clone();
        match self {
            Feature::Baseline => {}
            Feature::CacheSizing { llc_mb_per_socket } => {
                out.llc_mb_per_socket =
                    llc_mb_per_socket.clamp(0.5, config.shape.llc_mb_per_socket);
            }
            Feature::DvfsCap { freq_max_ghz } => {
                out.freq_max_ghz =
                    freq_max_ghz.clamp(config.freq_min_ghz, config.shape.freq_max_ghz);
            }
            Feature::SmtOff => {
                out.smt_enabled = false;
            }
            Feature::Compound(features) => {
                for f in features {
                    out = f.apply(&out);
                }
            }
        }
        out
    }

    /// Short identifier used in experiment output tables.
    pub fn label(&self) -> String {
        match self {
            Feature::Baseline => "Baseline".into(),
            Feature::CacheSizing { llc_mb_per_socket } => {
                format!("Feature1(LLC={llc_mb_per_socket}MB)")
            }
            Feature::DvfsCap { freq_max_ghz } => format!("Feature2(Fmax={freq_max_ghz}GHz)"),
            Feature::SmtOff => "Feature3(SMT off)".into(),
            Feature::Compound(fs) => {
                let inner: Vec<String> = fs.iter().map(Feature::label).collect();
                format!("Compound[{}]", inner.join(", "))
            }
        }
    }

    /// The Table 4 description row for this feature.
    pub fn table4_row(&self) -> String {
        match self {
            Feature::Baseline => {
                "30MB LLC/socket, 1.2 - 2.9GHz clock, Hyperthreading enabled".into()
            }
            Feature::CacheSizing { llc_mb_per_socket } => format!(
                "{llc_mb_per_socket}MB LLC/socket, 1.2 - 2.9GHz clock, Hyperthreading enabled"
            ),
            Feature::DvfsCap { freq_max_ghz } => {
                format!("30MB LLC/socket, 1.2 - {freq_max_ghz}GHz clock, Hyperthreading enabled")
            }
            Feature::SmtOff => {
                "30MB LLC/socket, 1.2 - 2.9GHz clock, Hyperthreading disabled".into()
            }
            Feature::Compound(_) => self.label(),
        }
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineShape;

    fn base() -> MachineConfig {
        MachineShape::default_shape().baseline_config()
    }

    #[test]
    fn baseline_is_identity() {
        let c = base();
        assert_eq!(Feature::Baseline.apply(&c), c);
    }

    #[test]
    fn feature1_shrinks_llc_only() {
        let c = base();
        let f = Feature::paper_feature1().apply(&c);
        assert_eq!(f.llc_mb_per_socket, 12.0);
        assert_eq!(f.freq_max_ghz, c.freq_max_ghz);
        assert!(f.smt_enabled);
        assert!(f.is_valid());
    }

    #[test]
    fn feature2_caps_frequency_only() {
        let c = base();
        let f = Feature::paper_feature2().apply(&c);
        assert_eq!(f.freq_max_ghz, 1.8);
        assert_eq!(f.llc_mb_per_socket, 30.0);
        assert!(f.is_valid());
    }

    #[test]
    fn feature3_disables_smt_only() {
        let c = base();
        let f = Feature::paper_feature3().apply(&c);
        assert!(!f.smt_enabled);
        assert_eq!(f.schedulable_vcpus(), 24);
        assert_eq!(f.llc_mb_per_socket, 30.0);
    }

    #[test]
    fn knobs_clamp_to_silicon() {
        let c = base();
        let too_big = Feature::CacheSizing {
            llc_mb_per_socket: 99.0,
        }
        .apply(&c);
        assert_eq!(too_big.llc_mb_per_socket, 30.0);
        let too_fast = Feature::DvfsCap { freq_max_ghz: 5.0 }.apply(&c);
        assert_eq!(too_fast.freq_max_ghz, 2.9);
        let too_slow = Feature::DvfsCap { freq_max_ghz: 0.1 }.apply(&c);
        assert_eq!(too_slow.freq_max_ghz, c.freq_min_ghz);
    }

    #[test]
    fn compound_applies_in_sequence() {
        let c = base();
        let f =
            Feature::Compound(vec![Feature::paper_feature1(), Feature::paper_feature3()]).apply(&c);
        assert_eq!(f.llc_mb_per_socket, 12.0);
        assert!(!f.smt_enabled);
    }

    #[test]
    fn labels_and_rows() {
        assert_eq!(Feature::paper_feature3().label(), "Feature3(SMT off)");
        assert!(Feature::paper_feature1().table4_row().contains("12MB"));
        assert!(Feature::Baseline.table4_row().contains("30MB"));
        assert_eq!(Feature::paper_features().len(), 3);
    }
}
