//! Extraction self-diagnosis: how much can the representative set be
//! trusted *without* running the full-datacenter ground truth?
//!
//! FLARE's estimate is exact when every scenario in a cluster responds to
//! the feature like its representative does. The natural self-check —
//! affordable because it needs only a few extra replays — is to measure
//! the *within-cluster impact dispersion*: replay the representative plus
//! a few additional members per cluster and see how far they spread. The
//! weighted dispersion bounds the estimation error the clustering can
//! introduce, answering the adopter's question "are 18 groups enough for
//! *my* corpus?" (the §5.4 fixed-cost claim, made checkable).

use crate::analyzer::Analyzer;
use crate::error::{FlareError, Result};
use crate::replayer::{replay_impact, Testbed};
use flare_sim::datacenter::Corpus;
use flare_sim::machine::MachineConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What the Analyzer's repair stage did to a degraded metric database
/// before normalization and PCA. All-zero (the default) on a clean
/// database — the repair stage is then a no-op and the pipeline's output
/// is byte-identical to the unrepaired path.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RepairReport {
    /// Scenario records the repair stage inspected.
    pub records: usize,
    /// Missing samples (NaN cells) filled with the column median.
    pub imputed_cells: usize,
    /// Outlier cells clamped to the `median ± k·MAD` band.
    pub winsorized_cells: usize,
    /// Columns with no finite sample at all — imputed with 0 and flagged,
    /// since no in-band value exists to borrow.
    pub dead_columns: Vec<usize>,
}

impl RepairReport {
    /// `true` when the database needed no repair at all.
    pub fn is_clean(&self) -> bool {
        self.imputed_cells == 0 && self.winsorized_cells == 0 && self.dead_columns.is_empty()
    }

    /// Total cells the repair stage rewrote.
    pub fn repaired_cells(&self) -> usize {
        self.imputed_cells + self.winsorized_cells
    }
}

/// Dispersion measurement of one cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterDispersion {
    /// Cluster index.
    pub cluster: usize,
    /// The representative's measured impact, %.
    pub representative_impact: f64,
    /// Impacts of the additionally sampled members, %.
    pub member_impacts: Vec<f64>,
    /// Cluster weight in the corpus.
    pub weight: f64,
}

impl ClusterDispersion {
    /// Mean of all measured impacts in this cluster (representative +
    /// sampled members).
    pub fn mean_impact(&self) -> f64 {
        let n = 1 + self.member_impacts.len();
        (self.representative_impact + self.member_impacts.iter().sum::<f64>()) / n as f64
    }

    /// Standard deviation of the measured impacts (0 when only the
    /// representative was measurable).
    pub fn std_dev(&self) -> f64 {
        let mut all = vec![self.representative_impact];
        all.extend_from_slice(&self.member_impacts);
        flare_linalg::stats::std_dev(&all)
    }

    /// |representative − sampled-member mean|: the bias the
    /// representative introduces for this cluster, in pp.
    pub fn representative_bias(&self) -> f64 {
        if self.member_impacts.is_empty() {
            return 0.0;
        }
        let member_mean =
            self.member_impacts.iter().sum::<f64>() / self.member_impacts.len() as f64;
        (self.representative_impact - member_mean).abs()
    }
}

/// The full self-diagnosis report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractionDiagnosis {
    /// Per-cluster dispersions.
    pub clusters: Vec<ClusterDispersion>,
    /// Weighted mean within-cluster standard deviation, pp — the noise
    /// floor the clustering imposes on any estimate.
    pub weighted_dispersion: f64,
    /// Weighted mean |representative − members| bias, pp — a direct,
    /// ground-truth-free bound on the estimate's clustering error.
    pub weighted_bias_bound: f64,
    /// Extra scenario replays the diagnosis cost (beyond the estimate's).
    pub extra_replays: usize,
}

impl ExtractionDiagnosis {
    /// `true` if the weighted bias bound is below `tolerance_pp` — the
    /// extraction is trustworthy for features of this kind at that
    /// tolerance.
    pub fn is_trustworthy(&self, tolerance_pp: f64) -> bool {
        self.weighted_bias_bound <= tolerance_pp
    }
}

/// Runs the self-diagnosis for one feature: per cluster, replays the
/// representative and up to `samples_per_cluster` additional random
/// members, then aggregates dispersion and bias.
///
/// Cost: at most `k × (1 + samples_per_cluster)` replays — e.g. 18 × 3 =
/// 54, still ~17× cheaper than the full datacenter.
///
/// # Errors
///
/// Returns [`FlareError::InsufficientData`] if no cluster yields a
/// measurable representative.
#[allow(clippy::too_many_arguments)]
pub fn diagnose_extraction<T: Testbed>(
    corpus: &Corpus,
    analyzer: &Analyzer,
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
    samples_per_cluster: usize,
    seed: u64,
    weight_by_observations: bool,
) -> Result<ExtractionDiagnosis> {
    let mut rng = StdRng::seed_from_u64(seed);
    let weights = analyzer.cluster_weights(weight_by_observations);
    let mut clusters = Vec::new();
    let mut extra_replays = 0usize;

    for (c, &weight) in weights.iter().enumerate() {
        // Representative = first HP-measurable member.
        let mut rep_impact = None;
        let mut rep_pos = 0;
        for (pos, id) in analyzer.ranked_ids(c).enumerate() {
            let entry = match corpus.get(id) {
                Some(e) => e,
                None => continue,
            };
            if !entry.scenario.has_hp_job() {
                continue;
            }
            if let Some(i) = replay_impact(testbed, &entry.scenario, baseline, feature_config) {
                rep_impact = Some(i);
                rep_pos = pos;
                break;
            }
        }
        let rep_impact = match rep_impact {
            Some(i) => i,
            None => continue,
        };

        // Sample up to `samples_per_cluster` other members uniformly.
        let candidates: Vec<_> = analyzer
            .ranked_ids(c)
            .enumerate()
            .filter(|(pos, _)| *pos != rep_pos)
            .map(|(_, id)| id)
            .collect();
        let mut member_impacts = Vec::new();
        let mut pool = candidates;
        while member_impacts.len() < samples_per_cluster && !pool.is_empty() {
            let pick = rng.gen_range(0..pool.len());
            let id = pool.swap_remove(pick);
            let entry = match corpus.get(id) {
                Some(e) => e,
                None => continue,
            };
            if !entry.scenario.has_hp_job() {
                continue;
            }
            extra_replays += 1;
            if let Some(i) = replay_impact(testbed, &entry.scenario, baseline, feature_config) {
                member_impacts.push(i);
            }
        }

        clusters.push(ClusterDispersion {
            cluster: c,
            representative_impact: rep_impact,
            member_impacts,
            weight,
        });
    }

    if clusters.is_empty() {
        return Err(FlareError::InsufficientData(
            "no cluster produced a measurable representative".into(),
        ));
    }
    let total_w: f64 = clusters.iter().map(|c| c.weight).sum();
    let weighted_dispersion =
        clusters.iter().map(|c| c.weight * c.std_dev()).sum::<f64>() / total_w;
    let weighted_bias_bound = clusters
        .iter()
        .map(|c| c.weight * c.representative_bias())
        .sum::<f64>()
        / total_w;
    Ok(ExtractionDiagnosis {
        clusters,
        weighted_dispersion,
        weighted_bias_bound,
        extra_replays,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterCountRule, FlareConfig};
    use crate::pipeline::Flare;
    use crate::replayer::SimTestbed;
    use flare_sim::datacenter::CorpusConfig;
    use flare_sim::feature::Feature;

    fn setup() -> (Flare, MachineConfig) {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let baseline = cfg.machine_config.clone();
        let flare = Flare::fit(
            Corpus::generate(&cfg),
            FlareConfig {
                cluster_count: ClusterCountRule::Fixed(8),
                ..FlareConfig::default()
            },
        )
        .expect("fit");
        (flare, baseline)
    }

    #[test]
    fn diagnosis_bounds_the_real_error() {
        let (flare, baseline) = setup();
        let feature = Feature::paper_feature2();
        let fc = feature.apply(&baseline);
        let diagnosis = diagnose_extraction(
            flare.corpus(),
            flare.analyzer(),
            &SimTestbed,
            &baseline,
            &fc,
            3,
            7,
            true,
        )
        .unwrap();
        assert!(!diagnosis.clusters.is_empty());
        assert!(diagnosis.weighted_dispersion >= 0.0);
        assert!(diagnosis.weighted_bias_bound >= 0.0);
        assert!(diagnosis.extra_replays > 0);
        // DVFS impacts are fairly uniform -> tight bound.
        assert!(
            diagnosis.weighted_bias_bound < 5.0,
            "bias bound {}",
            diagnosis.weighted_bias_bound
        );
    }

    #[test]
    fn baseline_feature_diagnoses_as_exact() {
        let (flare, baseline) = setup();
        let diagnosis = diagnose_extraction(
            flare.corpus(),
            flare.analyzer(),
            &SimTestbed,
            &baseline,
            &baseline,
            2,
            7,
            true,
        )
        .unwrap();
        assert!(diagnosis.weighted_dispersion.abs() < 1e-9);
        assert!(diagnosis.is_trustworthy(1e-6));
    }

    #[test]
    fn deterministic_given_seed() {
        let (flare, baseline) = setup();
        let fc = Feature::paper_feature1().apply(&baseline);
        let run = |seed| {
            diagnose_extraction(
                flare.corpus(),
                flare.analyzer(),
                &SimTestbed,
                &baseline,
                &fc,
                2,
                seed,
                true,
            )
            .unwrap()
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn zero_samples_still_reports_representatives() {
        let (flare, baseline) = setup();
        let fc = Feature::paper_feature3().apply(&baseline);
        let diagnosis = diagnose_extraction(
            flare.corpus(),
            flare.analyzer(),
            &SimTestbed,
            &baseline,
            &fc,
            0,
            7,
            true,
        )
        .unwrap();
        assert_eq!(diagnosis.extra_replays, 0);
        assert!(diagnosis.weighted_bias_bound.abs() < 1e-12);
        for c in &diagnosis.clusters {
            assert!(c.member_impacts.is_empty());
        }
    }
}
