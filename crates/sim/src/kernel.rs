//! Scenario-evaluation kernels: zero-allocation interference solves and a
//! content-addressed evaluation cache (DESIGN.md §9).
//!
//! The paper's premise is that datacenter behaviour is massively redundant:
//! thousands of machine-ticks exhibit the same few colocation mixes, and a
//! [`Scenario`] is itself a *multiset* — a mix with eight instances of one
//! job resolves the same profile eight times and solves eight identical
//! per-instance equations in the unbatched
//! [`evaluate_with_profiles`](crate::interference::evaluate_with_profiles)
//! path. The kernels here exploit both redundancies without changing a
//! single output bit:
//!
//! - [`ProfileTable`] — the catalog resolved once into a flat, dense
//!   per-job slot array indexed by [`JobName::index`], replacing one
//!   `profile_of` closure call (and `JobProfile` clone) per instance.
//! - [`EvalScratch`] — a reusable arena for the solver's intermediate
//!   buffers (LLC demands/shares, miss rates, bandwidth demands), sized
//!   per *distinct job* rather than per instance, so a steady-state solve
//!   allocates only its output `MachinePerf`.
//! - [`EvalCache`] — a content-addressed memo keyed by the canonical
//!   colocation-multiset key, an exact `MachineConfig` identity, and the
//!   bit pattern of the (clamped) momentary load factor: since evaluation
//!   is a pure function of `(scenario, config, load)`, a stored
//!   [`MachinePerf`] is byte-identical to recomputing it. The plain
//!   [`EvalCache::evaluate`] path is the load-1.0 slice of the key space,
//!   so steady-state solves and the Profiler's diurnal phase solves ride
//!   one cache. Hit/miss counters surface in diagnostics
//!   ([`EvalCache::stats`]).
//!
//! # Exactness
//!
//! The grouped solver reproduces the unbatched path's floating-point
//! operations *in the same order*. Instances of one job are adjacent in
//! the scenario's canonical instance order (a `Scenario` stores a
//! `BTreeMap`), and every machine-level aggregate in the unbatched path is
//! a left fold over instances in that order. Each per-instance addend
//! depends only on the instance's job, so the grouped solver adds the same
//! per-job constant `n` times in a loop — never `constant * n`, which
//! would round differently — and multiple independent accumulators share
//! one pass because each receives exactly the addend sequence its own
//! separate fold would. Per-instance outcomes depend only on (profile,
//! shared machine scalars, per-job share/miss-rate), so one
//! [`InstanceOutcome`] is solved per distinct job and cloned `n` times.
//! Parallelism and reuse stay wall-clock knobs, never result knobs — the
//! PR 4 contract, now covering the simulation substrate.

use crate::interference::{
    latency_inflation, smt_pairing_probability, InstanceOutcome, MachinePerf,
    DISK_DEPENDENCY_SCALE, MISS_PENALTY_PER_MPKI, NET_DEPENDENCY_SCALE, REFERENCE_FREQ_GHZ,
};
use crate::machine::MachineConfig;
use crate::scenario::Scenario;
use flare_workloads::catalog;
use flare_workloads::job::JobName;
use flare_workloads::profile::JobProfile;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A dense per-job profile table: one [`JobProfile`] slot per
/// [`JobName::ALL`] entry, indexed by [`JobName::index`]. Resolving the
/// profile for an instance is a direct slot borrow — no closure call, no
/// clone, one resolution per table lifetime instead of per instance.
#[derive(Debug, Clone)]
pub struct ProfileTable {
    slots: Vec<JobProfile>,
}

impl ProfileTable {
    /// Builds a table by resolving every job once through `f`.
    pub fn from_fn(mut f: impl FnMut(JobName) -> JobProfile) -> Self {
        ProfileTable {
            slots: JobName::ALL.iter().map(|&j| f(j)).collect(),
        }
    }

    /// The catalog's profiles, resolved once per process.
    pub fn catalog() -> &'static ProfileTable {
        static TABLE: OnceLock<ProfileTable> = OnceLock::new();
        TABLE.get_or_init(|| ProfileTable::from_fn(catalog::profile))
    }

    /// The profile of `job`.
    pub fn get(&self, job: JobName) -> &JobProfile {
        &self.slots[job.index()]
    }

    /// The dense slot array (index = [`JobName::index`]).
    pub fn slots(&self) -> &[JobProfile] {
        &self.slots
    }
}

/// Per-distinct-job intermediate buffers of one interference solve,
/// cleared (not freed) between solves.
#[derive(Debug, Default)]
struct GroupBuffers {
    demands: Vec<f64>,
    shares: Vec<f64>,
    mpkis: Vec<f64>,
    bw_demands: Vec<f64>,
}

/// Reusable arena for interference solves: the per-distinct-job buffers
/// plus a scratch profile table for load-scaled evaluation. Create one per
/// worker (or use [`with_scratch`] for the thread-local one) and reuse it
/// across a whole corpus — steady-state solves allocate only their output
/// [`MachinePerf`].
#[derive(Debug, Default)]
pub struct EvalScratch {
    bufs: GroupBuffers,
    scaled: Vec<JobProfile>,
}

impl EvalScratch {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

thread_local! {
    static SCRATCH: RefCell<EvalScratch> = RefCell::new(EvalScratch::new());
}

/// Runs `f` with the calling thread's evaluation scratch arena — the
/// zero-setup way to reach the kernel path from code without its own
/// per-worker scratch. Do not call [`with_scratch`] (or anything that
/// does, e.g. [`crate::interference::evaluate`]) from inside `f`.
pub fn with_scratch<R>(f: impl FnOnce(&mut EvalScratch) -> R) -> R {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

/// Evaluates `scenario` on `config` resolving profiles from `table` — the
/// kernel equivalent of
/// [`evaluate_with_profiles`](crate::interference::evaluate_with_profiles)
/// with a table-backed `profile_of`, byte-identical by the grouped-fold
/// argument in the module docs.
pub fn evaluate_with_table(
    scenario: &Scenario,
    config: &MachineConfig,
    table: &ProfileTable,
    scratch: &mut EvalScratch,
) -> MachinePerf {
    evaluate_grouped(scenario, config, table.slots(), &mut scratch.bufs)
}

/// Evaluates `scenario` on `config` with the catalog's profiles — the
/// kernel path behind [`crate::interference::evaluate`].
pub fn evaluate_catalog(
    scenario: &Scenario,
    config: &MachineConfig,
    scratch: &mut EvalScratch,
) -> MachinePerf {
    evaluate_grouped(
        scenario,
        config,
        ProfileTable::catalog().slots(),
        &mut scratch.bufs,
    )
}

/// Evaluates `scenario` at a momentary load factor — the kernel path
/// behind [`crate::interference::evaluate_at_load`], byte-identical to the
/// unbatched [`crate::interference::evaluate_at_load_naive`] oracle. The
/// factor is clamped to `[0.1, 1.5]`; CPU utilization saturates at 1.
pub fn evaluate_at_load_scratch(
    scenario: &Scenario,
    config: &MachineConfig,
    load: f64,
    scratch: &mut EvalScratch,
) -> MachinePerf {
    let load = load.clamp(0.1, 1.5);
    let EvalScratch { bufs, scaled } = scratch;
    if (load - 1.0).abs() > f64::EPSILON {
        // Scale the whole catalog once per solve (14 jobs) instead of once
        // per instance, applying exactly the unbatched path's operations.
        scaled.clear();
        for &job in JobName::ALL {
            let mut p = catalog::profile(job);
            p.cpu_util = (p.cpu_util * load).min(1.0);
            p.mem_bw_gbps *= load;
            p.net_rx_mbps *= load;
            p.net_tx_mbps *= load;
            p.disk_read_mbps *= load;
            p.disk_write_mbps *= load;
            p.syscalls_ps *= load;
            scaled.push(p);
        }
        evaluate_grouped(scenario, config, scaled, bufs)
    } else {
        evaluate_grouped(scenario, config, ProfileTable::catalog().slots(), bufs)
    }
}

/// The grouped interference solve over a dense per-job slot array. See the
/// module docs for the bit-exactness argument; every accumulator below
/// adds its per-job constant once per *instance* to replicate the
/// unbatched left fold's rounding.
fn evaluate_grouped(
    scenario: &Scenario,
    config: &MachineConfig,
    slots: &[JobProfile],
    bufs: &mut GroupBuffers,
) -> MachinePerf {
    let GroupBuffers {
        demands,
        shares,
        mpkis,
        bw_demands,
    } = bufs;
    demands.clear();
    shares.clear();
    mpkis.clear();
    bw_demands.clear();

    let cores = config.shape.total_cores() as f64;
    let logical = config.schedulable_vcpus() as f64;

    // ---- CPU occupancy + LLC demand (one pass, independent folds) -------
    // Accumulators start at -0.0 because `Sum for f64` folds from -0.0;
    // starting at +0.0 would flip the sign bit of empty (and all-negative-
    // zero) sums, breaking bit-identity with the unbatched path.
    let mut active_vcpus = -0.0f64;
    let mut total_demand = -0.0f64;
    let mut total_instances = 0usize;
    for (job, n) in scenario.iter() {
        let p = &slots[job.index()];
        let per_active = 4.0 * p.cpu_util;
        let demand = p.working_set_mb;
        for _ in 0..n {
            active_vcpus += per_active;
            total_demand += demand;
        }
        demands.push(demand);
        total_instances += n as usize;
    }
    let resident = active_vcpus.min(logical);
    let timeslice_global = if active_vcpus > logical {
        logical / active_vcpus
    } else {
        1.0
    };
    let pairing = if config.smt_enabled {
        smt_pairing_probability(resident, cores)
    } else {
        0.0
    };
    let core_active_fraction = resident.min(cores) / cores;

    // ---- Frequency ------------------------------------------------------
    let freq = config.achieved_freq_ghz(core_active_fraction);

    // ---- LLC partitioning (llc_partition's branch, buffer-reusing) ------
    let total_mb = config.total_llc_mb();
    if total_demand <= total_mb || total_demand <= f64::EPSILON {
        shares.extend_from_slice(demands);
    } else {
        let scale = total_mb / total_demand;
        shares.extend(demands.iter().map(|d| d * scale));
    }
    for ((job, _), &share) in scenario.iter().zip(shares.iter()) {
        mpkis.push(slots[job.index()].llc_mpki_at(share));
    }

    // ---- DRAM bandwidth + shared I/O (one pass, independent folds) ------
    // Traffic stays *demand-based* (see the monotonicity note in
    // `evaluate_with_profiles`); the kernel only changes where the numbers
    // are stored, not what they are.
    for ((job, _), &mpki) in scenario.iter().zip(mpkis.iter()) {
        let p = &slots[job.index()];
        let blowup = if p.base_llc_mpki > 0.0 {
            mpki / p.base_llc_mpki
        } else {
            1.0
        };
        bw_demands.push(p.mem_bw_gbps * blowup);
    }
    // -0.0 starts again: see the CPU-occupancy fold above.
    let mut total_bw_demand = -0.0f64;
    let mut latency_critical_bw = -0.0f64;
    let mut total_net = -0.0f64;
    let mut total_disk = -0.0f64;
    for ((job, n), &bw) in scenario.iter().zip(bw_demands.iter()) {
        let p = &slots[job.index()];
        let critical = bw * (0.2 + 0.8 * p.latency_sensitivity);
        let net = p.net_rx_mbps + p.net_tx_mbps;
        let disk = p.disk_read_mbps + p.disk_write_mbps;
        for _ in 0..n {
            total_bw_demand += bw;
            latency_critical_bw += critical;
            total_net += net;
            total_disk += disk;
        }
    }
    let dram_utilization = total_bw_demand / config.shape.dram_bw_gbps;
    let bw_throttle = if dram_utilization > 1.0 {
        1.0 / dram_utilization
    } else {
        1.0
    };
    let lat_inflation = latency_inflation(latency_critical_bw / config.shape.dram_bw_gbps);
    let nic_capacity_mbps = config.shape.nic_gbps * 1000.0 / 8.0;
    let net_throttle = if total_net > nic_capacity_mbps {
        nic_capacity_mbps / total_net
    } else {
        1.0
    };
    let disk_throttle = if total_disk > config.shape.disk_mbps {
        config.shape.disk_mbps / total_disk
    } else {
        1.0
    };

    // ---- Per-instance composition: one solve per distinct job -----------
    let mut outcomes = Vec::with_capacity(total_instances);
    for (((job, n), &share), &mpki) in scenario.iter().zip(shares.iter()).zip(mpkis.iter()) {
        let profile = &slots[job.index()];
        let freq_factor = profile.cpu_bound_fraction * (freq / REFERENCE_FREQ_GHZ)
            + (1.0 - profile.cpu_bound_fraction);
        let smt_factor = 1.0 - pairing * (1.0 - profile.smt_friendliness);
        let effective_extra_mpki = (mpki * lat_inflation - profile.base_llc_mpki).max(0.0);
        let mem_factor = 1.0
            / (1.0 + profile.latency_sensitivity * MISS_PENALTY_PER_MPKI * effective_extra_mpki);
        let bw_dependency = (1.0 - profile.latency_sensitivity).max(0.2);
        let bw_factor = 1.0 - bw_dependency * (1.0 - bw_throttle);
        let net_dep = (profile.net_rx_mbps + profile.net_tx_mbps)
            / ((profile.net_rx_mbps + profile.net_tx_mbps) + NET_DEPENDENCY_SCALE);
        let disk_dep = (profile.disk_read_mbps + profile.disk_write_mbps)
            / ((profile.disk_read_mbps + profile.disk_write_mbps) + DISK_DEPENDENCY_SCALE);
        let io_factor =
            (1.0 - net_dep * (1.0 - net_throttle)) * (1.0 - disk_dep * (1.0 - disk_throttle));

        let mips = profile.inherent_mips
            * freq_factor
            * smt_factor
            * timeslice_global
            * mem_factor
            * bw_factor
            * io_factor;
        let outcome = InstanceOutcome {
            job,
            mips,
            normalized_perf: mips / profile.inherent_mips,
            llc_share_mb: share,
            llc_mpki: mpki,
            mem_bw_gbps: JobProfile::mem_bw_from_misses(mips, mpki),
            freq_ghz: freq,
            smt_factor,
            timeslice_factor: timeslice_global,
            freq_factor,
            mem_factor,
            bw_factor,
            io_factor,
        };
        for _ in 1..n {
            outcomes.push(outcome.clone());
        }
        outcomes.push(outcome);
    }

    MachinePerf {
        instances: outcomes,
        core_active_fraction,
        active_vcpus,
        dram_utilization,
        latency_inflation: lat_inflation,
        freq_ghz: freq,
        smt_pairing_probability: pairing,
    }
}

/// `true` if two evaluations are bit-for-bit identical (every `f64`
/// compared by its bit pattern, so `-0.0 != 0.0` and NaNs compare by
/// payload) — the equivalence the kernel layer guarantees and the
/// differential tests assert.
pub fn perf_bits_equal(a: &MachinePerf, b: &MachinePerf) -> bool {
    let scalar = |x: f64, y: f64| x.to_bits() == y.to_bits();
    a.instances.len() == b.instances.len()
        && scalar(a.core_active_fraction, b.core_active_fraction)
        && scalar(a.active_vcpus, b.active_vcpus)
        && scalar(a.dram_utilization, b.dram_utilization)
        && scalar(a.latency_inflation, b.latency_inflation)
        && scalar(a.freq_ghz, b.freq_ghz)
        && scalar(a.smt_pairing_probability, b.smt_pairing_probability)
        && a.instances.iter().zip(&b.instances).all(|(x, y)| {
            x.job == y.job
                && scalar(x.mips, y.mips)
                && scalar(x.normalized_perf, y.normalized_perf)
                && scalar(x.llc_share_mb, y.llc_share_mb)
                && scalar(x.llc_mpki, y.llc_mpki)
                && scalar(x.mem_bw_gbps, y.mem_bw_gbps)
                && scalar(x.freq_ghz, y.freq_ghz)
                && scalar(x.smt_factor, y.smt_factor)
                && scalar(x.timeslice_factor, y.timeslice_factor)
                && scalar(x.freq_factor, y.freq_factor)
                && scalar(x.mem_factor, y.mem_factor)
                && scalar(x.bw_factor, y.bw_factor)
                && scalar(x.io_factor, y.io_factor)
        })
}

/// Canonical identity of a colocation multiset: the scenario's sorted
/// `(job, count)` pairs. Two scenarios with the same key are the same
/// multiset by construction, so their evaluations are interchangeable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScenarioKey(Box<[(JobName, u32)]>);

impl ScenarioKey {
    /// The canonical key of `scenario`.
    pub fn of(scenario: &Scenario) -> Self {
        ScenarioKey(scenario.iter().collect())
    }
}

/// Diagnostics snapshot of an [`EvalCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to solve.
    pub misses: u64,
    /// Entries evicted to honour a capacity bound (always 0 for the
    /// default unbounded cache).
    pub evictions: u64,
    /// Stored evaluations.
    pub entries: usize,
    /// Distinct machine configurations seen.
    pub configs: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A content-addressed evaluation cache: `(scenario multiset, machine
/// config, load-bits) → MachinePerf`.
///
/// Configs are interned exactly — an FNV-1a fingerprint pre-filters, then
/// full `PartialEq` confirms before a config id is reused, so two configs
/// share an id only when they are equal field-for-field (`f64`s compared
/// by value; a fingerprint collision can never alias distinct configs).
/// The load factor is keyed by the bit pattern of its *clamped* value
/// (`[0.1, 1.5]`, the solver's domain), so loads that solve identically
/// share an entry and distinct loads can never collide; the steady-state
/// [`EvalCache::evaluate`] path is exactly the load-1.0 slice of the key
/// space. Because evaluation is pure, a stored result is byte-identical to
/// recomputing it; concurrent racers that solve the same key keep the
/// first stored value, which is the same value by purity. Thread-safe and
/// shareable by reference across workers.
///
/// The default cache is unbounded; [`EvalCache::with_capacity`] bounds it
/// to a fixed number of entries with deterministic FIFO (insertion-order)
/// eviction. Eviction only ever changes *which* lookups hit — every
/// returned value is still byte-identical to an uncached solve by purity —
/// and the [`CacheStats::evictions`] counter reports what was dropped.
#[derive(Debug)]
pub struct EvalCache {
    configs: RwLock<Vec<(u64, MachineConfig)>>,
    entries: RwLock<EntryStore>,
    /// Maximum stored entries; `usize::MAX` means unbounded.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Entry map plus FIFO insertion order for deterministic eviction.
#[derive(Debug, Default)]
struct EntryStore {
    map: HashMap<(usize, ScenarioKey, u64), Arc<MachinePerf>>,
    order: VecDeque<(usize, ScenarioKey, u64)>,
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::with_capacity(usize::MAX)
    }
}

impl EvalCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        EvalCache::default()
    }

    /// An empty cache holding at most `capacity` entries: once full, each
    /// insertion evicts the oldest-inserted entry (deterministic FIFO, so
    /// a replayed workload evicts identically). A capacity of 0 stores
    /// nothing — every lookup solves. Config interning is never bounded;
    /// it is a few dozen entries at most in practice.
    pub fn with_capacity(capacity: usize) -> Self {
        EvalCache {
            configs: RwLock::default(),
            entries: RwLock::default(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Evaluates `scenario` on `config` with the catalog's profiles,
    /// returning the stored result when the same (multiset, config) pair
    /// was evaluated before. Equivalent to [`EvalCache::evaluate_at_load`]
    /// at load 1.0 and shares its cache entries.
    pub fn evaluate(
        &self,
        scenario: &Scenario,
        config: &MachineConfig,
        scratch: &mut EvalScratch,
    ) -> Arc<MachinePerf> {
        self.evaluate_at_load(scenario, config, 1.0, scratch)
    }

    /// Evaluates `scenario` on `config` at a momentary `load` factor,
    /// returning the stored result when the same (multiset, config, load)
    /// triple was solved before — the cache path behind the Profiler's
    /// diurnal phase solves.
    ///
    /// The load is clamped to the solver's `[0.1, 1.5]` domain *before*
    /// keying, so out-of-range loads share the entry of the boundary value
    /// they solve as, and a load of exactly 1.0 shares the steady-state
    /// [`EvalCache::evaluate`] entries. Bit-identical to
    /// [`evaluate_at_load_scratch`] by purity.
    pub fn evaluate_at_load(
        &self,
        scenario: &Scenario,
        config: &MachineConfig,
        load: f64,
        scratch: &mut EvalScratch,
    ) -> Arc<MachinePerf> {
        let load = load.clamp(0.1, 1.5);
        let key = (
            self.config_id(config),
            ScenarioKey::of(scenario),
            load.to_bits(),
        );
        if let Some(perf) = self
            .entries
            .read()
            .expect("eval cache poisoned")
            .map
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(perf);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let perf = Arc::new(evaluate_at_load_scratch(scenario, config, load, scratch));
        let mut store = self.entries.write().expect("eval cache poisoned");
        let EntryStore { map, order } = &mut *store;
        let result = match map.entry(key.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(v) => {
                let stored = Arc::clone(v.insert(perf));
                order.push_back(key);
                stored
            }
        };
        while map.len() > self.capacity {
            match order.pop_front() {
                Some(oldest) => {
                    if map.remove(&oldest).is_some() {
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
        result
    }

    /// Hit/miss/eviction/size counters for diagnostics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.entries.read().expect("eval cache poisoned").map.len(),
            configs: self.configs.read().expect("eval cache poisoned").len(),
        }
    }

    /// Interns `config`, returning its dense id. Fingerprint pre-filter,
    /// exact `PartialEq` confirm.
    fn config_id(&self, config: &MachineConfig) -> usize {
        let fp = config_fingerprint(config);
        let find = |configs: &[(u64, MachineConfig)]| {
            configs.iter().position(|(f, c)| *f == fp && c == config)
        };
        if let Some(i) = find(&self.configs.read().expect("eval cache poisoned")) {
            return i;
        }
        let mut configs = self.configs.write().expect("eval cache poisoned");
        if let Some(i) = find(&configs) {
            return i;
        }
        configs.push((fp, config.clone()));
        configs.len() - 1
    }
}

/// FNV-1a over every field of the config (floats by bit pattern) — a
/// pre-filter only; [`EvalCache`] always confirms with `PartialEq`.
fn config_fingerprint(config: &MachineConfig) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut fnv = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    let shape = &config.shape;
    fnv(shape.model.as_bytes());
    for v in [
        shape.sockets,
        shape.cores_per_socket,
        shape.vcpus_per_socket,
    ] {
        fnv(&v.to_le_bytes());
    }
    for v in [
        shape.llc_mb_per_socket,
        shape.dram_gb,
        shape.dram_bw_gbps,
        shape.freq_min_ghz,
        shape.freq_max_ghz,
        shape.disk_mbps,
        shape.nic_gbps,
        config.llc_mb_per_socket,
        config.freq_min_ghz,
        config.freq_max_ghz,
    ] {
        fnv(&v.to_bits().to_le_bytes());
    }
    fnv(&[config.smt_enabled as u8]);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::Feature;
    use crate::interference::{evaluate_at_load_naive, evaluate_with_profiles};
    use crate::machine::MachineShape;

    fn base() -> MachineConfig {
        MachineShape::default_shape().baseline_config()
    }

    /// A spread of mixes: empty, solo, duplicate-heavy, oversubscribed,
    /// LP-only, and the full job roster.
    fn mixes() -> Vec<Scenario> {
        vec![
            Scenario::empty(),
            Scenario::from_counts([(JobName::WebSearch, 1)]),
            Scenario::from_counts([(JobName::MediaStreaming, 8)]),
            Scenario::from_counts([
                (JobName::GraphAnalytics, 3),
                (JobName::Mcf, 6),
                (JobName::Libquantum, 3),
            ]),
            Scenario::from_counts([(JobName::Sjeng, 2), (JobName::Perlbench, 2)]),
            Scenario::from_counts(JobName::ALL.iter().map(|&j| (j, 1))),
            Scenario::from_counts([(JobName::DataCaching, 12)]),
        ]
    }

    fn configs() -> Vec<MachineConfig> {
        let b = base();
        let small = MachineShape::small_shape().baseline_config();
        vec![
            b.clone(),
            Feature::paper_feature1().apply(&b),
            Feature::paper_feature2().apply(&b),
            Feature::paper_feature3().apply(&b),
            small,
        ]
    }

    #[test]
    fn catalog_table_matches_catalog() {
        let table = ProfileTable::catalog();
        for &job in JobName::ALL {
            assert_eq!(*table.get(job), catalog::profile(job), "{job}");
        }
        assert_eq!(table.slots().len(), JobName::ALL.len());
    }

    #[test]
    fn grouped_solve_is_bit_identical_to_unbatched() {
        let mut scratch = EvalScratch::new();
        for config in configs() {
            for scenario in mixes() {
                let naive = evaluate_with_profiles(&scenario, &config, &catalog::profile);
                let fast = evaluate_catalog(&scenario, &config, &mut scratch);
                assert!(
                    perf_bits_equal(&naive, &fast),
                    "kernel diverged for {scenario:?} on {}",
                    config.shape.model
                );
            }
        }
    }

    #[test]
    fn table_solve_matches_closure_solve_with_overrides() {
        let table = ProfileTable::from_fn(|job| {
            let mut p = catalog::profile(job);
            p.cpu_util = (p.cpu_util * 0.7).min(1.0);
            p.mem_bw_gbps *= 1.3;
            p
        });
        let profile_of = |job: JobName| {
            let mut p = catalog::profile(job);
            p.cpu_util = (p.cpu_util * 0.7).min(1.0);
            p.mem_bw_gbps *= 1.3;
            p
        };
        let mut scratch = EvalScratch::new();
        let config = base();
        for scenario in mixes() {
            let naive = evaluate_with_profiles(&scenario, &config, &profile_of);
            let fast = evaluate_with_table(&scenario, &config, &table, &mut scratch);
            assert!(perf_bits_equal(&naive, &fast), "diverged for {scenario:?}");
        }
    }

    #[test]
    fn at_load_solve_is_bit_identical_to_naive_oracle() {
        let mut scratch = EvalScratch::new();
        let config = base();
        for scenario in mixes() {
            for load in [0.0, 0.1, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0] {
                let naive = evaluate_at_load_naive(&scenario, &config, load);
                let fast = evaluate_at_load_scratch(&scenario, &config, load, &mut scratch);
                assert!(
                    perf_bits_equal(&naive, &fast),
                    "load {load} diverged for {scenario:?}"
                );
            }
        }
    }

    #[test]
    fn cache_returns_identical_bits_and_counts_hits() {
        let cache = EvalCache::new();
        let mut scratch = EvalScratch::new();
        let b = base();
        let f1 = Feature::paper_feature1().apply(&b);
        let s = Scenario::from_counts([(JobName::GraphAnalytics, 2), (JobName::Mcf, 4)]);

        let direct = evaluate_catalog(&s, &b, &mut scratch);
        let first = cache.evaluate(&s, &b, &mut scratch);
        let second = cache.evaluate(&s, &b, &mut scratch);
        assert!(perf_bits_equal(&direct, &first));
        assert!(perf_bits_equal(&first, &second));
        // Same multiset built differently still hits.
        let same = Scenario::from_counts([(JobName::Mcf, 4), (JobName::GraphAnalytics, 2)]);
        let third = cache.evaluate(&same, &b, &mut scratch);
        assert!(perf_bits_equal(&first, &third));
        // A different config misses and is kept apart.
        let other = cache.evaluate(&s, &f1, &mut scratch);
        assert!(!perf_bits_equal(&first, &other));

        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.configs, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cache_interns_equal_configs_once() {
        let cache = EvalCache::new();
        let mut scratch = EvalScratch::new();
        let s = Scenario::from_counts([(JobName::DataCaching, 2)]);
        // Two separately-constructed but equal configs share one id.
        cache.evaluate(&s, &base(), &mut scratch);
        cache.evaluate(&s, &base(), &mut scratch);
        let stats = cache.stats();
        assert_eq!(stats.configs, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn distinct_mix_config_load_triples_never_collide() {
        // Every (mix, config, load) triple must get its own entry: a full
        // cold pass is all misses, a full warm pass is all hits, and the
        // entry count is exactly the number of distinct triples.
        let cache = EvalCache::new();
        let mut scratch = EvalScratch::new();
        let mixes: Vec<Scenario> = mixes().into_iter().take(3).collect();
        let configs: Vec<MachineConfig> = configs().into_iter().take(3).collect();
        let loads = [0.5, 0.75, 1.0, 1.25];
        for scenario in &mixes {
            for config in &configs {
                for &load in &loads {
                    let cached = cache.evaluate_at_load(scenario, config, load, &mut scratch);
                    let direct = evaluate_at_load_scratch(scenario, config, load, &mut scratch);
                    assert!(
                        perf_bits_equal(&cached, &direct),
                        "cold solve diverged at load {load} for {scenario:?}"
                    );
                }
            }
        }
        let expected = (mixes.len() * configs.len() * loads.len()) as u64;
        let cold = cache.stats();
        assert_eq!(cold.misses, expected);
        assert_eq!(cold.hits, 0);
        assert_eq!(cold.entries, expected as usize);
        for scenario in &mixes {
            for config in &configs {
                for &load in &loads {
                    let warm = cache.evaluate_at_load(scenario, config, load, &mut scratch);
                    let direct = evaluate_at_load_scratch(scenario, config, load, &mut scratch);
                    assert!(perf_bits_equal(&warm, &direct));
                }
            }
        }
        let warm = cache.stats();
        assert_eq!(warm.misses, expected);
        assert_eq!(warm.hits, expected);
        assert_eq!(warm.entries, expected as usize);
    }

    #[test]
    fn at_load_cache_clamps_before_keying() {
        let cache = EvalCache::new();
        let mut scratch = EvalScratch::new();
        let b = base();
        let s = Scenario::from_counts([(JobName::WebSearch, 4)]);
        // 2.0 clamps to 1.5, so the explicit 1.5 lookup must hit...
        cache.evaluate_at_load(&s, &b, 2.0, &mut scratch);
        cache.evaluate_at_load(&s, &b, 1.5, &mut scratch);
        // ...and an exact-1.0 phase solve shares the steady-state entry.
        cache.evaluate_at_load(&s, &b, 1.0, &mut scratch);
        cache.evaluate(&s, &b, &mut scratch);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 2));
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn empty_cache_stats_are_zero() {
        let stats = EvalCache::new().stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.entries, stats.configs),
            (0, 0, 0, 0)
        );
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn bounded_cache_evicts_fifo_and_stays_byte_identical() {
        let cache = EvalCache::with_capacity(2);
        let mut scratch = EvalScratch::new();
        let b = base();
        let a = Scenario::from_counts([(JobName::DataCaching, 2)]);
        let s2 = Scenario::from_counts([(JobName::Mcf, 3)]);
        let s3 = Scenario::from_counts([(JobName::GraphAnalytics, 1), (JobName::Libquantum, 1)]);

        let direct_a = evaluate_catalog(&a, &b, &mut scratch);
        cache.evaluate(&a, &b, &mut scratch); // miss, store [a]
        cache.evaluate(&s2, &b, &mut scratch); // miss, store [a, s2]
        cache.evaluate(&a, &b, &mut scratch); // hit — FIFO ignores recency
        cache.evaluate(&s3, &b, &mut scratch); // miss, evicts a → [s2, s3]
        let recomputed = cache.evaluate(&a, &b, &mut scratch); // miss again
        assert!(perf_bits_equal(&direct_a, &recomputed)); // eviction never changes bits

        let stats = cache.stats();
        // a, s2, s3, a-after-eviction: 4 misses; one hit; two evictions
        // (s3 evicted a, then re-inserting a evicted s2 — FIFO order).
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 4, 2));
        assert_eq!(stats.entries, 2);
        // The second-oldest entry (s3) is still resident.
        cache.evaluate(&s3, &b, &mut scratch);
        assert_eq!(cache.stats().hits, 2);
    }

    #[test]
    fn zero_capacity_cache_stores_nothing_but_still_answers() {
        let cache = EvalCache::with_capacity(0);
        let mut scratch = EvalScratch::new();
        let b = base();
        let s = Scenario::from_counts([(JobName::WebSearch, 2)]);
        let direct = evaluate_catalog(&s, &b, &mut scratch);
        let first = cache.evaluate(&s, &b, &mut scratch);
        let second = cache.evaluate(&s, &b, &mut scratch);
        assert!(perf_bits_equal(&direct, &first));
        assert!(perf_bits_equal(&direct, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (0, 2, 2));
        assert_eq!(stats.entries, 0);
    }

    #[test]
    fn unbounded_default_cache_never_evicts() {
        let cache = EvalCache::new();
        let mut scratch = EvalScratch::new();
        let b = base();
        for mix in mixes() {
            cache.evaluate(&mix, &b, &mut scratch);
        }
        let stats = cache.stats();
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.entries as u64, stats.misses);
    }

    #[test]
    fn scenario_key_is_order_insensitive_and_count_sensitive() {
        let a = Scenario::from_counts([(JobName::Mcf, 3), (JobName::DataCaching, 2)]);
        let b = Scenario::from_counts([(JobName::DataCaching, 2), (JobName::Mcf, 3)]);
        let c = Scenario::from_counts([(JobName::DataCaching, 3), (JobName::Mcf, 2)]);
        assert_eq!(ScenarioKey::of(&a), ScenarioKey::of(&b));
        assert_ne!(ScenarioKey::of(&a), ScenarioKey::of(&c));
    }

    #[test]
    fn config_fingerprint_separates_feature_configs() {
        let b = base();
        let mut fps: Vec<u64> = configs().iter().map(config_fingerprint).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(
            fps.len(),
            configs().len(),
            "feature configs must not collide"
        );
        assert_eq!(config_fingerprint(&b), config_fingerprint(&base()));
    }
}
