//! The `flare-cli` binary: command-line access to the FLARE pipeline.
//! See `flare::cli` for the implementation and `flare-cli help` for usage.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result =
        flare::cli::parse_args(&args).and_then(|inv| flare::cli::run(&inv, &mut std::io::stdout()));
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
