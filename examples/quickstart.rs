//! Quickstart: collect a corpus, fit FLARE, evaluate the paper's three
//! features, and compare against the full-datacenter ground truth.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flare::baselines::fulldc::full_datacenter_impact;
use flare::prelude::*;

fn main() -> Result<(), FlareError> {
    // 1. Collect the scenario corpus (the paper's 8-machine serving rack
    //    observed for a week; ~1 000 distinct job colocations).
    println!("collecting scenario corpus...");
    let corpus_config = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_config);
    let baseline = corpus_config.machine_config.clone();
    println!(
        "  {} distinct job-colocation scenarios ({} with HP jobs)",
        corpus.len(),
        corpus.hp_entries().len()
    );

    // 2. Fit FLARE: refine 106 raw metrics, build PCs, cluster, extract 18
    //    representative scenarios.
    println!("\nfitting FLARE...");
    let flare = Flare::fit(corpus.clone(), FlareConfig::default())?;
    let analyzer = flare.analyzer();
    println!(
        "  refinement: {} -> {} metrics",
        flare.database().schema().len(),
        analyzer.refined_schema().len()
    );
    println!(
        "  PCA: {} components explain 95% of variance",
        analyzer.n_pcs()
    );
    println!("  representatives: {}", flare.n_representatives());

    // 3. Evaluate each feature on the representatives only, and compare to
    //    the (expensive) full-datacenter truth.
    for feature in Feature::paper_features() {
        let estimate = flare.evaluate(&feature)?;
        let feature_config = feature.apply(&baseline);
        let truth = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &feature_config, true);
        println!(
            "\n{}:\n  FLARE estimate  : {:>6.2}% MIPS reduction ({} replays)\n  \
             datacenter truth: {:>6.2}% ({} replays)\n  error: {:.2}pp; cost reduction {:.0}x",
            feature.label(),
            estimate.impact_pct,
            estimate.replay_count,
            truth.impact_pct,
            truth.evaluation_cost,
            (estimate.impact_pct - truth.impact_pct).abs(),
            truth.evaluation_cost as f64 / estimate.replay_count as f64,
        );
    }
    Ok(())
}
