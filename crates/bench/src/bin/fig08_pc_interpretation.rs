//! Fig. 8: the high-level metrics (principal components) with their major
//! contributing raw metrics and generated interpretations.

use flare_bench::{banner, ExperimentContext};
use flare_core::interpret::interpret_pcs;

fn main() {
    banner(
        "High-level metrics (PCs) and their interpretations",
        "Fig. 8",
    );
    let ctx = ExperimentContext::standard();
    let interpretations = interpret_pcs(ctx.flare.analyzer(), 6);

    for p in &interpretations {
        println!(
            "\nPC{:<2} (explains {:>5.2}% of variance): {}",
            p.pc,
            p.explained_variance * 100.0,
            p.label
        );
        for l in &p.top_loadings {
            let sign = if l.weight >= 0.0 { '+' } else { '-' };
            println!("    {sign} {:<28} weight {:+.3}", l.metric.name(), l.weight);
        }
    }
    println!(
        "\n{} PCs labeled; both Machine- and HP-level metrics contribute (the paper's
two-level observation).",
        interpretations.len()
    );
    let with_both = interpretations
        .iter()
        .filter(|p| {
            let has_hp = p
                .top_loadings
                .iter()
                .any(|l| l.metric.level == flare_metrics::schema::Level::Hp);
            let has_machine = p
                .top_loadings
                .iter()
                .any(|l| l.metric.level == flare_metrics::schema::Level::Machine);
            has_hp && has_machine
        })
        .count();
    println!("PCs mixing HP and Machine metrics: {with_both}");
}
