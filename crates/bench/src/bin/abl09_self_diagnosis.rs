//! Ablation 9: ground-truth-free self-diagnosis — does the within-cluster
//! dispersion bound (a few extra replays) actually track FLARE's true
//! error? This answers the adopter's question "how do I know the
//! extraction is good enough *without* evaluating the whole datacenter?"

use flare_baselines::fulldc::full_datacenter_impact;
use flare_bench::banner;
use flare_core::diagnostics::diagnose_extraction;
use flare_core::replayer::SimTestbed;
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;

fn main() {
    banner(
        "Self-diagnosis: within-cluster dispersion vs true estimation error",
        "extension (makes the §5.4 fixed-cost claim checkable in the field)",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();
    let flare = Flare::fit(corpus.clone(), FlareConfig::default()).expect("fit");

    println!(
        "\n  {:<22} {:>9} {:>9} {:>11} {:>12} {:>13}",
        "feature", "truth %", "FLARE %", "true err", "bias bound", "extra replays"
    );
    for feature in Feature::paper_features() {
        let fc = feature.apply(&baseline);
        let truth = full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
        let estimate = flare.evaluate(&feature).expect("estimate");
        let diagnosis = diagnose_extraction(
            &corpus,
            flare.analyzer(),
            &SimTestbed,
            &baseline,
            &fc,
            3,
            0xD1A6,
            true,
        )
        .expect("diagnosis");
        println!(
            "  {:<22} {:>9.2} {:>9.2} {:>10.2}pp {:>11.2}pp {:>13}",
            feature.label(),
            truth,
            estimate.impact_pct,
            (estimate.impact_pct - truth).abs(),
            diagnosis.weighted_bias_bound,
            diagnosis.extra_replays,
        );
    }
    println!(
        "\ntakeaway: ~3 extra replays per cluster produce a dispersion-based error bound\n\
         that tracks the true error without ever measuring the full datacenter — total\n\
         cost stays ~13x below census even with the diagnosis included."
    );
}
