//! Shard-streaming clustering: the out-of-core twin of [`crate::minibatch`].
//!
//! The dense tier ([`kmeans_tiered`]) needs the full `n x d` projection
//! resident as one [`Matrix`]. This module walks any [`ShardAccess`]
//! implementor instead — a resident [`flare_linalg::ShardedMatrix`] or a
//! spill-backed [`flare_linalg::ShardStore`] — so clustering peak memory
//! is bounded by the shard budget plus O(n) scalar state (norms,
//! distances, assignments), never by `n x d`.
//!
//! ## Determinism contract
//!
//! [`kmeans_tiered_sharded`] is **bit-identical** to running
//! [`kmeans_tiered`] on the coalesced dense matrix, for every shard
//! layout, every thread count, and both residency modes:
//!
//! - at or below the threshold the shards are gathered into a dense
//!   matrix (shard order *is* row order) and handed to the exact
//!   [`kmeans`] path — same function, same RNG stream;
//! - above it, [`kmeans_minibatch_sharded`] mirrors
//!   [`kmeans_minibatch`] draw for draw: the RNG consumption depends only
//!   on `n` and the incrementally maintained distances, every distance
//!   uses the same scalar kernel on the same row bytes, and every
//!   accumulation (moment sums, SSE) walks shards in order so the
//!   addition sequence is exactly the dense row order. The per-shard
//!   seeding sweeps fan out through [`par_map_range`] and are combined in
//!   shard-index order, so the thread knob stays a pure wall-clock knob.
//!
//! The differential tests below hold this equivalence on the full
//! [`crate::kmeans::KMeansResult`] (centroids, assignments, SSE bits).
//!
//! [`kmeans_tiered`]: crate::minibatch::kmeans_tiered
//! [`kmeans_minibatch`]: crate::minibatch::kmeans_minibatch

use crate::distance::squared_euclidean;
use crate::error::{ClusterError, Result};
use crate::kernel::{
    assign_rows, nearest_distance_flat, point_norms, squared_euclidean_bounded, CentroidBuffer,
    LloydScratch,
};
use crate::kmeans::{kmeans, KMeansConfig, KMeansResult};
use crate::minibatch::{reduce_coreset, MiniBatchConfig};
use flare_exec::{par_map_range, resolve_threads};
use flare_linalg::{Matrix, ShardAccess};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn shard_err(e: flare_linalg::LinalgError) -> ClusterError {
    ClusterError::ShardAccess(e.to_string())
}

/// Logical start offset of every shard, computed once per clustering call
/// so random row lookups don't re-sum shard lengths.
fn shard_starts<A: ShardAccess>(data: &A) -> Vec<usize> {
    (0..data.shard_count())
        .map(|s| data.shard_start(s))
        .collect()
}

/// Maps a logical row index to its shard: the last shard whose start is
/// `<= i` (empty shards share their successor's start and hold no rows,
/// so "last" is always the shard that actually owns the row).
fn locate_shard(starts: &[usize], i: usize) -> usize {
    starts.partition_point(|&st| st <= i).saturating_sub(1)
}

/// Copies logical row `i` into `out` (one shard fault at most).
fn fetch_row<A: ShardAccess>(
    data: &A,
    starts: &[usize],
    i: usize,
    out: &mut Vec<f64>,
) -> Result<()> {
    let s = locate_shard(starts, i);
    data.with_shard(s, |m| {
        out.clear();
        out.extend_from_slice(m.row(i - starts[s]));
    })
    .map_err(shard_err)
}

/// Copies the rows at `indices` (in `indices` order) out of the store,
/// faulting each touched shard exactly once: lookups are grouped by shard
/// and shards are visited in ascending order, so a spill-backed store
/// pays at most `shard_count` faults per call instead of one per row.
fn fetch_rows<A: ShardAccess>(
    data: &A,
    starts: &[usize],
    indices: &[usize],
) -> Result<Vec<Vec<f64>>> {
    let mut out = vec![Vec::new(); indices.len()];
    let mut by_shard: Vec<(usize, usize)> = indices
        .iter()
        .enumerate()
        .map(|(p, &i)| (locate_shard(starts, i), p))
        .collect();
    by_shard.sort_unstable();
    let mut idx = 0;
    while idx < by_shard.len() {
        let s = by_shard[idx].0;
        data.with_shard(s, |m| {
            while idx < by_shard.len() && by_shard[idx].0 == s {
                let p = by_shard[idx].1;
                out[p] = m.row(indices[p] - starts[s]).to_vec();
                idx += 1;
            }
        })
        .map_err(shard_err)?;
    }
    Ok(out)
}

/// Gathers every shard into one dense matrix, in shard (= row) order.
/// The below-threshold tier path uses this to hand the exact [`kmeans`]
/// the same bytes `ShardedMatrix::coalesced` would produce.
pub fn gather_dense<A: ShardAccess>(data: &A) -> Result<Matrix> {
    let mut out = Matrix::zeros(data.nrows(), data.ncols());
    let mut base = 0;
    for s in 0..data.shard_count() {
        let len = data.shard_len(s);
        data.with_shard(s, |m| {
            for local in 0..len {
                out.row_mut(base + local).copy_from_slice(m.row(local));
            }
        })
        .map_err(shard_err)?;
        base += len;
    }
    Ok(out)
}

/// Euclidean norm of every logical row: per-shard [`point_norms`] passes
/// fanned out over `threads`, concatenated in shard order — bit-identical
/// to `point_norms(coalesced)` because each row's norm is a pure function
/// of its bytes.
fn point_norms_sharded<A: ShardAccess + Sync>(
    data: &A,
    threads: Option<usize>,
) -> Result<Vec<f64>> {
    let chunks = par_map_range(data.shard_count(), threads, |s| {
        data.with_shard(s, |m| point_norms(m))
    });
    let mut out = Vec::with_capacity(data.nrows());
    for c in chunks {
        out.extend(c.map_err(shard_err)?);
    }
    Ok(out)
}

/// Squared distance from every logical row to `point`, in row order
/// (per-shard parallel, shard-order concat — same bits as the dense scan).
fn distances_to<A: ShardAccess + Sync>(
    data: &A,
    point: &[f64],
    threads: Option<usize>,
) -> Result<Vec<f64>> {
    let chunks = par_map_range(data.shard_count(), threads, |s| {
        data.with_shard(s, |m| {
            (0..m.nrows())
                .map(|i| squared_euclidean(m.row(i), point))
                .collect::<Vec<f64>>()
        })
    });
    let mut out = Vec::with_capacity(data.nrows());
    for c in chunks {
        out.extend(c.map_err(shard_err)?);
    }
    Ok(out)
}

/// Folds candidate rows into the maintained nearest-candidate distances.
///
/// The dense seeding loop iterates candidates outer / rows inner; here the
/// loops are interchanged (shards outer, candidates in order inner) so
/// each shard is faulted once per round. The interchange is exact: each
/// `d2` slot's update sequence depends only on the candidate order, which
/// is preserved, and slots never interact. `bounded` selects the bounded
/// kernel (the per-round fold) or the plain one (the farthest-point
/// top-up), matching the dense code path for path-identical bits.
fn fold_rows<A: ShardAccess + Sync>(
    data: &A,
    starts: &[usize],
    rows: &[Vec<f64>],
    d2: &mut [f64],
    threads: Option<usize>,
    bounded: bool,
) -> Result<()> {
    if rows.is_empty() {
        return Ok(());
    }
    let snapshot: &[f64] = d2;
    let chunks = par_map_range(data.shard_count(), threads, |s| {
        data.with_shard(s, |m| {
            let mut chunk = snapshot[starts[s]..starts[s] + m.nrows()].to_vec();
            for row_c in rows {
                for (local, slot) in chunk.iter_mut().enumerate() {
                    if bounded {
                        if let Some(nd) = squared_euclidean_bounded(m.row(local), row_c, *slot) {
                            if nd < *slot {
                                *slot = nd;
                            }
                        }
                    } else {
                        let nd = squared_euclidean(m.row(local), row_c);
                        if nd < *slot {
                            *slot = nd;
                        }
                    }
                }
            }
            chunk
        })
    });
    let mut off = 0;
    for c in chunks {
        let chunk = c.map_err(shard_err)?;
        d2[off..off + chunk.len()].copy_from_slice(&chunk);
        off += chunk.len();
    }
    Ok(())
}

/// The assignment step over a sharded store: shards walked in order, each
/// handed to the exact-pruned [`assign_rows`] kernel with the matching
/// offset slices of the norm and assignment vectors. Warm-start hints are
/// the slice's previous contents, exactly as in the dense call; each
/// row's result is a pure function of `(row, centroids)`, so this is
/// bit-identical to `assign_rows(coalesced, ..)` for every thread count.
fn assign_rows_sharded<A: ShardAccess>(
    data: &A,
    x_norms: &[f64],
    centroids: &CentroidBuffer,
    centroid_norms: &[f64],
    assignments: &mut [usize],
    threads: Option<usize>,
) -> Result<()> {
    let mut start = 0;
    for s in 0..data.shard_count() {
        let len = data.shard_len(s);
        let x_slice = &x_norms[start..start + len];
        let a_slice = &mut assignments[start..start + len];
        data.with_shard(s, |m| {
            assign_rows(m, x_slice, centroids, centroid_norms, a_slice, threads);
        })
        .map_err(shard_err)?;
        start += len;
    }
    Ok(())
}

/// Mirrors `crate::kmeans::validate` for a sharded store (same checks in
/// the same order; finiteness is checked per shard, fanned out over the
/// configured workers).
fn validate_sharded<A: ShardAccess + Sync>(data: &A, config: &KMeansConfig) -> Result<()> {
    if config.k == 0 {
        return Err(ClusterError::InvalidParameter("k must be >= 1".into()));
    }
    if config.threads == Some(0) {
        return Err(ClusterError::InvalidParameter(
            "threads must be >= 1 when set (None = available parallelism)".into(),
        ));
    }
    if config.max_iters == 0 {
        return Err(ClusterError::InvalidParameter(
            "max_iters must be >= 1".into(),
        ));
    }
    if data.nrows() < config.k {
        return Err(ClusterError::TooFewPoints {
            points: data.nrows(),
            k: config.k,
        });
    }
    let finite = par_map_range(data.shard_count(), config.threads, |s| {
        data.with_shard(s, |m| m.is_finite())
    });
    for f in finite {
        if !f.map_err(shard_err)? {
            return Err(ClusterError::NonFinite("kmeans input".into()));
        }
    }
    Ok(())
}

/// The tiered entry point over a sharded store: gathers to the exact
/// dense [`kmeans`] at or below [`MiniBatchConfig::threshold`] rows,
/// streams [`kmeans_minibatch_sharded`] above it. Bit-identical to
/// [`crate::minibatch::kmeans_tiered`] on the coalesced matrix in both
/// regimes (see the [module docs](self)).
///
/// # Errors
///
/// Same conditions as [`kmeans`], plus
/// [`ClusterError::InvalidParameter`] for degenerate tier settings and
/// [`ClusterError::ShardAccess`] if a spilled shard cannot be read back.
pub fn kmeans_tiered_sharded<A: ShardAccess + Sync>(
    data: &A,
    config: &KMeansConfig,
    tier: &MiniBatchConfig,
) -> Result<KMeansResult> {
    tier.validate()?;
    if data.nrows() <= tier.threshold {
        let dense = gather_dense(data)?;
        return kmeans(&dense, config);
    }
    kmeans_minibatch_sharded(data, config, tier)
}

/// The scale tier over a sharded store: k-means‖ seeding → weighted
/// coreset reduction → mini-batch refinement → one warm-started
/// exact-pruned Lloyd run, all walking shards in row order. Bit-identical
/// to [`crate::minibatch::kmeans_minibatch`] on the coalesced matrix.
///
/// # Errors
///
/// Same conditions as [`kmeans_tiered_sharded`].
pub fn kmeans_minibatch_sharded<A: ShardAccess + Sync>(
    data: &A,
    config: &KMeansConfig,
    tier: &MiniBatchConfig,
) -> Result<KMeansResult> {
    validate_sharded(data, config)?;
    tier.validate()?;
    let k = config.k;
    let workers = resolve_threads(config.threads);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let starts = shard_starts(data);
    // Shared with the final warm-started Lloyd run.
    let x_norms = point_norms_sharded(data, config.threads)?;

    let candidates = parallel_seed_sharded(data, &starts, k, tier, &mut rng, config.threads)?;
    let (weights, cand_buffer) =
        weigh_candidates_sharded(data, &starts, &x_norms, &candidates, workers)?;
    let mut centers = reduce_coreset(&cand_buffer, &weights, k, config, &mut rng);
    minibatch_refine_sharded(data, &starts, &mut centers, config, tier, &mut rng)?;

    lloyd_from_sharded(data, &starts, config, centers, &x_norms, Some(workers))
}

/// k-means‖ oversampled seeding over shards: the same RNG stream and the
/// same per-row arithmetic as the dense `parallel_seed`, with the
/// distance-maintenance sweeps running per shard (in parallel) and the
/// sampling scan — the only RNG consumer — running serially over the
/// maintained distance vector.
fn parallel_seed_sharded<A: ShardAccess + Sync>(
    data: &A,
    starts: &[usize],
    k: usize,
    tier: &MiniBatchConfig,
    rng: &mut StdRng,
    threads: Option<usize>,
) -> Result<Vec<usize>> {
    let n = data.nrows();
    let mut candidates: Vec<usize> = Vec::with_capacity(tier.oversample * k * tier.seeding_rounds);
    let mut is_candidate = vec![false; n];
    let first = rng.gen_range(0..n);
    candidates.push(first);
    is_candidate[first] = true;
    let mut row_buf = Vec::new();
    fetch_row(data, starts, first, &mut row_buf)?;
    let mut d2 = distances_to(data, &row_buf, threads)?;

    let ell = (tier.oversample * k) as f64;
    for _ in 0..tier.seeding_rounds {
        let total: f64 = d2.iter().sum();
        if total <= f64::EPSILON {
            break; // every row coincides with a candidate
        }
        let round_start = candidates.len();
        for i in 0..n {
            let p = (ell * d2[i] / total).min(1.0);
            if rng.gen::<f64>() < p && !is_candidate[i] {
                candidates.push(i);
                is_candidate[i] = true;
            }
        }
        let new_rows = fetch_rows(data, starts, &candidates[round_start..])?;
        fold_rows(data, starts, &new_rows, &mut d2, threads, true)?;
    }

    // Deterministic farthest-point top-up for degenerate draws, exactly
    // like the dense path (plain distance kernel, one row per step).
    while candidates.len() < k {
        let far = (0..n)
            .max_by(|&x, &y| d2[x].total_cmp(&d2[y]))
            .expect("n >= k >= 1");
        candidates.push(far);
        is_candidate[far] = true;
        fetch_row(data, starts, far, &mut row_buf)?;
        let far_row = vec![row_buf.clone()];
        fold_rows(data, starts, &far_row, &mut d2, threads, false)?;
    }
    Ok(candidates)
}

/// Weights every candidate by its nearest-row count (one sharded pass of
/// the exact-pruned assignment kernel) and packs the candidate rows into
/// a [`CentroidBuffer`], faulting each shard once for the row gather.
fn weigh_candidates_sharded<A: ShardAccess>(
    data: &A,
    starts: &[usize],
    x_norms: &[f64],
    candidates: &[usize],
    workers: usize,
) -> Result<(Vec<f64>, CentroidBuffer)> {
    let d = data.ncols();
    let m = candidates.len();
    let rows = fetch_rows(data, starts, candidates)?;
    let mut flat = Vec::with_capacity(m * d);
    for r in &rows {
        flat.extend_from_slice(r);
    }
    let buffer = CentroidBuffer::from_flat(m, d, flat);
    let mut norms = vec![0.0; m];
    buffer.norms_into(&mut norms);
    let mut assign = vec![0usize; data.nrows()];
    assign_rows_sharded(data, x_norms, &buffer, &norms, &mut assign, Some(workers))?;
    let mut weights = vec![0.0f64; m];
    for &a in &assign {
        weights[a] += 1.0;
    }
    Ok((weights, buffer))
}

/// Sculley-style mini-batch refinement over shards: identical RNG draws
/// and update arithmetic to the dense `minibatch_refine`; the sampled
/// rows of each batch are gathered shard-grouped (one fault per touched
/// shard per batch) before the sequential center updates.
fn minibatch_refine_sharded<A: ShardAccess>(
    data: &A,
    starts: &[usize],
    centers: &mut CentroidBuffer,
    config: &KMeansConfig,
    tier: &MiniBatchConfig,
    rng: &mut StdRng,
) -> Result<()> {
    let n = data.nrows();
    let k = centers.k();
    let d = centers.dim();
    let batch = tier.batch_size.min(n);
    let mut counts = vec![0u64; k];
    let mut sampled = vec![0usize; batch];
    let mut assigned = vec![0usize; batch];
    let mut old = vec![0.0f64; d];
    for _ in 0..tier.max_batches {
        for s in sampled.iter_mut() {
            *s = rng.gen_range(0..n);
        }
        let rows = fetch_rows(data, starts, &sampled)?;
        for (row, a) in rows.iter().zip(assigned.iter_mut()) {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let dd = squared_euclidean(row, centers.row(c));
                if dd < best_d {
                    best_d = dd;
                    best = c;
                }
            }
            *a = best;
        }
        let mut movement = 0.0;
        for (row, &a) in rows.iter().zip(assigned.iter()) {
            counts[a] += 1;
            let eta = 1.0 / counts[a] as f64;
            old.copy_from_slice(centers.row(a));
            let center = centers.row_mut(a);
            for (cv, xv) in center.iter_mut().zip(row) {
                *cv += eta * (xv - *cv);
            }
            movement += squared_euclidean(&old, centers.row(a));
        }
        if movement <= config.tolerance {
            break;
        }
    }
    Ok(())
}

/// Lloyd iterations over a sharded store from externally supplied
/// centroids: the streaming twin of `crate::kmeans::lloyd_from`.
/// Assignment goes through the per-shard kernel; the update-step moment
/// accumulation, the empty-cluster farthest-point reseed, and the final
/// SSE all walk shards in order so every floating-point addition happens
/// in the exact dense row order — bit-identical output by construction.
fn lloyd_from_sharded<A: ShardAccess>(
    data: &A,
    starts: &[usize],
    config: &KMeansConfig,
    mut centroids: CentroidBuffer,
    x_norms: &[f64],
    assign_threads: Option<usize>,
) -> Result<KMeansResult> {
    let n = data.nrows();
    let d = data.ncols();
    let k = config.k;
    let shards = data.shard_count();
    let mut scratch = LloydScratch::new(k, d);
    let mut assignments = vec![0usize; n];

    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        centroids.norms_into(&mut scratch.centroid_norms);
        assign_rows_sharded(
            data,
            x_norms,
            &centroids,
            &scratch.centroid_norms,
            &mut assignments,
            assign_threads,
        )?;
        // Update step: accumulate in row order, one shard at a time.
        scratch.reset_accumulators();
        let mut base = 0;
        for s in 0..shards {
            let len = data.shard_len(s);
            data.with_shard(s, |m| {
                for local in 0..len {
                    let a = assignments[base + local];
                    scratch.counts[a] += 1;
                    for (sum, v) in scratch.sums[a * d..(a + 1) * d]
                        .iter_mut()
                        .zip(m.row(local))
                    {
                        *sum += v;
                    }
                }
            })
            .map_err(shard_err)?;
            base += len;
        }
        let mut movement = 0.0;
        let mut row_buf = Vec::new();
        for c in 0..k {
            if scratch.counts[c] == 0 {
                // Empty cluster: farthest-point reseed, with the
                // per-point nearest-centroid distances streamed shard by
                // shard (O(n) scalars, never n x d) and the same
                // last-max-wins selection as the dense path.
                let mut d_near = vec![0.0f64; n];
                let mut off = 0;
                for s in 0..shards {
                    let len = data.shard_len(s);
                    data.with_shard(s, |m| {
                        for local in 0..len {
                            d_near[off + local] = nearest_distance_flat(m.row(local), &centroids);
                        }
                    })
                    .map_err(shard_err)?;
                    off += len;
                }
                let far = (0..n)
                    .max_by(|&x, &y| d_near[x].total_cmp(&d_near[y]))
                    .expect("n >= k >= 1");
                fetch_row(data, starts, far, &mut row_buf)?;
                movement += squared_euclidean(centroids.row(c), &row_buf);
                centroids.set_row(c, &row_buf);
                continue;
            }
            let count = scratch.counts[c] as f64;
            for (m, s) in scratch
                .mean
                .iter_mut()
                .zip(&scratch.sums[c * d..(c + 1) * d])
            {
                *m = s / count;
            }
            movement += squared_euclidean(centroids.row(c), &scratch.mean);
            centroids.set_row(c, &scratch.mean);
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment and SSE against the converged centroids; the SSE
    // fold adds per-row terms in row order, exactly like `sse_flat`.
    centroids.norms_into(&mut scratch.centroid_norms);
    assign_rows_sharded(
        data,
        x_norms,
        &centroids,
        &scratch.centroid_norms,
        &mut assignments,
        assign_threads,
    )?;
    let mut sse = 0.0f64;
    let mut base = 0;
    for s in 0..shards {
        let len = data.shard_len(s);
        data.with_shard(s, |m| {
            for local in 0..len {
                sse += squared_euclidean(m.row(local), centroids.row(assignments[base + local]));
            }
        })
        .map_err(shard_err)?;
        base += len;
    }
    Ok(KMeansResult {
        centroids: centroids.to_rows(),
        assignments,
        sse,
        iterations,
    })
}

impl KMeansResult {
    /// The sharded twin of
    /// [`members_by_centroid_distance`](KMeansResult::members_by_centroid_distance):
    /// row indices of each cluster's members sorted by ascending distance
    /// to that cluster's centroid, computed by streaming shards in row
    /// order. Holds O(n) scalar scores instead of requiring the dense
    /// `n x d` matrix, and produces the identical ranking (same scalar
    /// kernel on the same row bytes, same stable total_cmp sort).
    ///
    /// # Errors
    ///
    /// [`ClusterError::DimensionMismatch`] if the store's row count does
    /// not match the assignment count, [`ClusterError::ShardAccess`] if a
    /// spilled shard cannot be read back.
    pub fn members_by_centroid_distance_sharded<A: ShardAccess>(
        &self,
        data: &A,
    ) -> Result<Vec<Vec<usize>>> {
        if self.assignments.len() != data.nrows() {
            return Err(ClusterError::DimensionMismatch(format!(
                "{} assignments for {} points",
                self.assignments.len(),
                data.nrows()
            )));
        }
        let mut ranked: Vec<Vec<usize>> = vec![Vec::new(); self.centroids.len()];
        for (i, &a) in self.assignments.iter().enumerate() {
            ranked[a].push(i);
        }
        // One streaming pass scores every row against its own centroid —
        // the only distances the per-cluster sorts consume.
        let mut scores = vec![0.0f64; self.assignments.len()];
        let mut base = 0;
        for s in 0..data.shard_count() {
            let len = data.shard_len(s);
            data.with_shard(s, |m| {
                for local in 0..len {
                    let i = base + local;
                    scores[i] =
                        squared_euclidean(m.row(local), &self.centroids[self.assignments[i]]);
                }
            })
            .map_err(shard_err)?;
            base += len;
        }
        for members in ranked.iter_mut() {
            let mut scored: Vec<(f64, usize)> = members.iter().map(|&m| (scores[m], m)).collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            members.clear();
            members.extend(scored.into_iter().map(|(_, m)| m));
        }
        Ok(ranked)
    }

    /// The sharded twin of
    /// [`representatives`](KMeansResult::representatives): the nearest
    /// member to each centroid, via
    /// [`members_by_centroid_distance_sharded`](KMeansResult::members_by_centroid_distance_sharded).
    ///
    /// # Errors
    ///
    /// Same conditions as
    /// [`members_by_centroid_distance_sharded`](KMeansResult::members_by_centroid_distance_sharded).
    pub fn representatives_sharded<A: ShardAccess>(&self, data: &A) -> Result<Vec<Option<usize>>> {
        Ok(self
            .members_by_centroid_distance_sharded(data)?
            .into_iter()
            .map(|m| m.first().copied())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minibatch::{kmeans_minibatch, kmeans_tiered};
    use flare_linalg::{ShardStore, ShardedMatrix};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// `blobs(per)` — 4 well-separated clusters of `per` points each
    /// (same generator as the minibatch tests).
    fn blobs(per: usize) -> Matrix {
        let centers = [(0.0, 0.0), (40.0, 0.0), (0.0, 40.0), (40.0, 40.0)];
        let mut rows = Vec::with_capacity(4 * per);
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for p in 0..per {
                let dx = (p as f64 * 0.37 + ci as f64).sin();
                let dy = (p as f64 * 0.71 + ci as f64).cos();
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    fn temp_spill_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "flare-cluster-sharded-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn below_threshold_gather_matches_dense_tier_bitwise() {
        let data = blobs(25); // 100 rows, threshold 20k
        let cfg = KMeansConfig::new(4).with_seed(7);
        let tier = MiniBatchConfig::default();
        let dense = kmeans_tiered(&data, &cfg, &tier).unwrap();
        // Shard-boundary coverage includes n = shard_rows ± 1.
        for shard_rows in [7, 30, 99, 100, 101] {
            let sm = ShardedMatrix::from_matrix(&data, shard_rows);
            let sharded = kmeans_tiered_sharded(&sm, &cfg, &tier).unwrap();
            assert_eq!(dense, sharded, "shard_rows={shard_rows}");
        }
    }

    #[test]
    fn minibatch_sharded_is_bit_identical_to_dense_minibatch() {
        let data = blobs(150); // 600 rows
        let cfg = KMeansConfig::new(4).with_seed(11);
        let tier = MiniBatchConfig::default()
            .with_threshold(200)
            .with_batch_size(64);
        let dense = kmeans_minibatch(&data, &cfg, &tier).unwrap();
        for shard_rows in [13, 64, 599, 600, 601] {
            let sm = ShardedMatrix::from_matrix(&data, shard_rows);
            assert_eq!(
                dense,
                kmeans_minibatch_sharded(&sm, &cfg, &tier).unwrap(),
                "shard_rows={shard_rows}"
            );
            // The tiered router takes the same path above the threshold.
            assert_eq!(
                dense,
                kmeans_tiered_sharded(&sm, &cfg, &tier).unwrap(),
                "tiered shard_rows={shard_rows}"
            );
        }
    }

    #[test]
    fn sharded_tier_is_thread_invariant() {
        let data = blobs(80); // 320 rows
        let tier = MiniBatchConfig::default()
            .with_threshold(100)
            .with_batch_size(32);
        let sm = ShardedMatrix::from_matrix(&data, 37);
        let base = KMeansConfig::new(4).with_seed(5).with_threads(Some(1));
        let serial = kmeans_tiered_sharded(&sm, &base, &tier).unwrap();
        for threads in [Some(2), Some(3), Some(8), None] {
            let parallel =
                kmeans_tiered_sharded(&sm, &base.clone().with_threads(threads), &tier).unwrap();
            assert_eq!(serial, parallel, "threads={threads:?}");
        }
    }

    #[test]
    fn spilled_store_matches_resident_store_bitwise() {
        let data = blobs(100); // 400 rows
        let cfg = KMeansConfig::new(4).with_seed(3);
        let tier = MiniBatchConfig::default()
            .with_threshold(300)
            .with_batch_size(64);
        let sm = ShardedMatrix::from_matrix(&data, 48);
        let resident = kmeans_tiered_sharded(&sm, &cfg, &tier).unwrap();
        let dir = temp_spill_dir("tier");
        let store = ShardStore::spill_to(ShardedMatrix::from_matrix(&data, 48), &dir, 2).unwrap();
        let spilled = kmeans_tiered_sharded(&store, &cfg, &tier).unwrap();
        assert_eq!(resident, spilled);
        // Representative extraction is identical across residency too.
        assert_eq!(
            resident.members_by_centroid_distance_sharded(&sm).unwrap(),
            spilled
                .members_by_centroid_distance_sharded(&store)
                .unwrap()
        );
        let store_dir = store.spill_dir().to_path_buf();
        drop(store);
        assert!(
            !store_dir.exists(),
            "spill dir should be cleaned up on drop"
        );
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn sharded_rankings_match_dense_rankings() {
        let data = blobs(30); // 120 rows
        let cfg = KMeansConfig::new(4).with_seed(9);
        let r = kmeans(&data, &cfg).unwrap();
        let dense_ranked = r.members_by_centroid_distance(&data);
        let dense_reps = r.representatives(&data);
        for shard_rows in [11, 40, 119, 120, 121] {
            let sm = ShardedMatrix::from_matrix(&data, shard_rows);
            assert_eq!(
                dense_ranked,
                r.members_by_centroid_distance_sharded(&sm).unwrap(),
                "shard_rows={shard_rows}"
            );
            assert_eq!(dense_reps, r.representatives_sharded(&sm).unwrap());
        }
    }

    #[test]
    fn duplicate_heavy_inputs_match_dense_through_reseeds() {
        // Mostly-duplicate data stresses the seeding top-up and the
        // empty-cluster reseed inside the streamed Lloyd run.
        let mut rows = vec![vec![1.0, 1.0]; 40];
        rows.extend(vec![vec![9.0, 9.0]; 40]);
        let data = Matrix::from_rows(&rows).unwrap();
        let cfg = KMeansConfig::new(2).with_seed(13);
        let tier = MiniBatchConfig::default()
            .with_threshold(10)
            .with_batch_size(16);
        let dense = kmeans_tiered(&data, &cfg, &tier).unwrap();
        for shard_rows in [9, 16, 80] {
            let sm = ShardedMatrix::from_matrix(&data, shard_rows);
            assert_eq!(
                dense,
                kmeans_tiered_sharded(&sm, &cfg, &tier).unwrap(),
                "shard_rows={shard_rows}"
            );
        }
    }

    #[test]
    fn sharded_validation_mirrors_dense() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let sm = ShardedMatrix::from_matrix(&data, 1);
        let tier = MiniBatchConfig::default();
        assert!(matches!(
            kmeans_tiered_sharded(&sm, &KMeansConfig::new(0), &tier),
            Err(ClusterError::InvalidParameter(_))
        ));
        assert!(matches!(
            kmeans_minibatch_sharded(&sm, &KMeansConfig::new(3), &tier),
            Err(ClusterError::TooFewPoints { points: 2, k: 3 })
        ));
        let nan = Matrix::from_rows(&[vec![f64::NAN], vec![0.0]]).unwrap();
        let nan_sm = ShardedMatrix::from_matrix(&nan, 1);
        assert!(matches!(
            kmeans_minibatch_sharded(&nan_sm, &KMeansConfig::new(1), &tier),
            Err(ClusterError::NonFinite(_))
        ));
        assert!(matches!(
            kmeans_minibatch_sharded(&sm, &KMeansConfig::new(1).with_threads(Some(0)), &tier),
            Err(ClusterError::InvalidParameter(_))
        ));
    }

    #[test]
    fn ranking_rejects_mismatched_store() {
        let data = blobs(10);
        let r = kmeans(&data, &KMeansConfig::new(2)).unwrap();
        let short = ShardedMatrix::from_matrix(&blobs(5), 16);
        assert!(matches!(
            r.members_by_centroid_distance_sharded(&short),
            Err(ClusterError::DimensionMismatch(_))
        ));
    }
}
