//! Ablation 20: shard-parallel featurization (DESIGN.md §14).
//!
//! PR 9/§13 made featurization *out-of-core*; this ablation proves the
//! same pass is now *parallel* without giving up a single bit. Three
//! gates, in the order the determinism contract demands:
//!
//! 1. **Identity first** — before any clock starts, the moment passes
//!    and the projected plane are checked byte-identical across thread
//!    counts {1, 2, 3, 8}: the two-level fold combines per-shard
//!    partials in shard-index order, so scheduling can never leak into
//!    the model. A spilled store behind the background prefetcher must
//!    also reproduce the resident bits (and actually record
//!    `prefetch_hits`, proving the readahead thread did the faulting).
//! 2. **Speedup** — the fused moment passes (`ZScore::fit_sharded` +
//!    `covariance_standardized_sharded` inside
//!    [`Pca::fit_sharded_threaded`]) must run ≥ 2× faster at 8 threads
//!    than at 1 (gate enforced only when the host exposes ≥ 8 cores;
//!    reported either way).
//! 3. **Cluster/representatives residency** — with the projected plane
//!    sharded, the cluster + representative stages may allocate O(n)
//!    scalar vectors (assignments, norms, per-row scores) and the n×k
//!    plane's transients, but never an n×d matrix: peak allocation
//!    during `kmeans_tiered_sharded` + ranking is gated strictly below
//!    `8·n·d` bytes and below an `O(n·k) + O(n)` bound, so stage memory
//!    no longer scales with the raw feature width.
//!
//! Results land in `results/BENCH_par.json`. `--smoke` is the CI
//! variant (same gates, fewer rows).

use flare_bench::banner;
use flare_cluster::kmeans::KMeansConfig;
use flare_cluster::minibatch::MiniBatchConfig;
use flare_cluster::sharded::kmeans_tiered_sharded;
use flare_exec::par_map_range;
use flare_linalg::pca::Pca;
use flare_linalg::{Matrix, ShardAccess, ShardStore, ShardedMatrix};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Counting allocator: live bytes and a resettable high-water mark
/// (layout-exact, same currency as abl19's "no n×d materialization"
/// gate). Atomics only — safe under the parallel fold.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Deterministic synthetic feature row (same generator family as
/// abl19): `latents` correlated signals mixed across `d` columns plus
/// per-cell jitter, so the PCA keeps a handful of components.
fn feature_row(i: usize, d: usize, latents: usize) -> Vec<f64> {
    let signals: Vec<f64> = (0..latents)
        .map(|s| ((i as f64 * 0.0137 + s as f64) * (1.0 + s as f64 * 0.41)).sin())
        .collect();
    (0..d)
        .map(|j| {
            let mixed: f64 = signals
                .iter()
                .enumerate()
                .map(|(s, v)| v * (1.0 + ((j * (s + 2)) as f64 * 0.73).cos()))
                .sum();
            mixed * 20.0 + ((i * 31 + j * 7) as f64 * 0.193).sin() * 0.5
        })
        .collect()
}

fn build_store(n: usize, d: usize, shard_rows: usize, latents: usize) -> ShardedMatrix {
    let mut m = ShardedMatrix::new(d, shard_rows);
    m.reserve_rows(n);
    for i in 0..n {
        m.push_row(&feature_row(i, d, latents))
            .expect("row width matches");
    }
    m
}

/// The featurize pass of `stages::run_featurize`, verbatim: threaded
/// streaming PCA fit, then the shard fan-out that projects each shard
/// through its own `RowProjector` clone into a sharded n×k plane
/// (blocks stitched back in shard-index order).
fn featurize<A: ShardAccess + Sync>(
    store: &A,
    variance_threshold: f64,
    threads: Option<usize>,
) -> (Pca, usize, ShardedMatrix) {
    let pca = Pca::fit_sharded_threaded(store, threads).expect("streaming fit");
    let k = pca
        .components_for_variance(variance_threshold)
        .expect("variance threshold");
    let projector = pca.row_projector(k).expect("projector");
    let blocks = par_map_range(store.shard_count(), threads, |s| {
        let mut projector = projector.clone();
        store
            .with_shard(s, |shard| {
                let mut block = Matrix::zeros(shard.nrows(), k);
                for i in 0..shard.nrows() {
                    projector
                        .project_whitened_into(shard.row(i), block.row_mut(i))
                        .expect("projection");
                }
                block
            })
            .expect("shard access")
    });
    let mut projected = ShardedMatrix::new(k, store.shard_rows());
    projected.reserve_rows(store.nrows());
    for block in blocks {
        for row in block.rows_iter() {
            projected.push_row(row).expect("width k");
        }
    }
    (pca, k, projected)
}

fn assert_bits_equal(a: &ShardedMatrix, b: &ShardedMatrix, label: &str) {
    assert_eq!(
        (a.nrows(), a.ncols()),
        (b.nrows(), b.ncols()),
        "{label}: shape"
    );
    for (i, (ra, rb)) in a.rows_iter().zip(b.rows_iter()).enumerate() {
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: row {i} bits diverged");
        }
    }
}

fn assert_eigen_bits_equal(a: &Pca, b: &Pca, label: &str) {
    for (x, y) in a.eigenvalues().iter().zip(b.eigenvalues()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{label}: eigenvalue bits diverged"
        );
    }
}

/// Best-of-`reps` wall clock for one threaded moment-pass fit.
fn time_fit(store: &ShardedMatrix, threads: Option<usize>, reps: usize) -> u128 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            let pca = Pca::fit_sharded_threaded(store, threads).expect("fit");
            let ns = start.elapsed().as_nanos();
            std::hint::black_box(pca);
            ns
        })
        .min()
        .expect("at least one rep")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "Ablation: shard-parallel featurization (two-level fold, prefetch, sharded plane)",
        "identical bits at every thread count, >=2x at 8 threads — DESIGN.md S14",
    );

    let (n, d, shard_rows, latents) = if smoke {
        (100_000, 32, 4_096, 4)
    } else {
        (150_000, 48, 8_192, 4)
    };
    let variance_threshold = 0.9;
    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());

    let store = build_store(n, d, shard_rows, latents);
    let shard_count = store.shard_count();
    println!("\n  store: {n} x {d} features -> {shard_count} shards ({cores} cores visible)");

    // --- Gate 1a: thread-count invariance, before any timing ---------------
    let (pca1, k, projected1) = featurize(&store, variance_threshold, Some(1));
    for t in [2usize, 3, 8] {
        let (pca_t, k_t, projected_t) = featurize(&store, variance_threshold, Some(t));
        assert_eq!(k, k_t, "component count diverged at {t} threads");
        assert_eigen_bits_equal(&pca1, &pca_t, &format!("{t} threads"));
        assert_bits_equal(&projected1, &projected_t, &format!("{t} threads"));
    }
    println!("  identity:  serial == 2 == 3 == 8 threads, bit for bit (k={k})");

    // --- Gate 1b: prefetcher visibility and spill invisibility -------------
    // A tight residency budget forces every shard walk through the
    // fault path; readahead depth 2 lets the background thread land
    // shards before compute asks for them.
    let dir = std::env::temp_dir().join(format!("flare-abl20-{}", std::process::id()));
    let spilled = ShardStore::spill_to(build_store(n, d, shard_rows, latents), &dir, 2)
        .expect("spill feature store")
        .with_prefetch(2);
    let (_, k_spill, projected_spill) = featurize(&spilled, variance_threshold, Some(1));
    let spill_stats = spilled.stats();
    assert_eq!(k, k_spill, "spill changed the component count");
    assert_bits_equal(
        &projected1,
        &projected_spill,
        "spilled+prefetch vs resident",
    );
    assert!(
        spill_stats.prefetch_hits > 0,
        "prefetcher recorded no hits across {} shards: {spill_stats:?}",
        shard_count
    );
    println!(
        "  prefetch:  {} prefetch hits, {} hits, {} faults, {:.1}% hit rate — bits unchanged",
        spill_stats.prefetch_hits,
        spill_stats.hits,
        spill_stats.faults,
        spill_stats.hit_rate() * 100.0
    );
    drop(projected_spill);
    drop(spilled); // removes the store's spill directory
    let _ = std::fs::remove_dir(&dir);

    // --- Gate 2: moment-pass speedup ---------------------------------------
    let reps = 3;
    let serial_ns = time_fit(&store, Some(1), reps);
    let par_ns = time_fit(&store, Some(8), reps);
    let speedup = serial_ns as f64 / par_ns as f64;
    let gate_enforced = cores >= 8;
    println!(
        "  speedup:   fit {:.0}ms serial -> {:.0}ms at 8 threads = {speedup:.2}x ({})",
        serial_ns as f64 / 1e6,
        par_ns as f64 / 1e6,
        if gate_enforced {
            ">=2x gate enforced"
        } else {
            "<8 cores: gate reported, not enforced"
        }
    );
    if gate_enforced {
        assert!(
            speedup >= 2.0,
            "moment passes sped up only {speedup:.2}x at 8 threads on {cores} cores"
        );
    }

    // --- Gate 3: cluster/representatives peak no longer scales with d ------
    // The stages walk the sharded n×k plane; allowed allocations are the
    // O(n) scalar vectors (assignments, norms, d2, per-row scores, the
    // ranking's index lists) plus n×k-scale transients (coreset gather,
    // the sub-threshold dense tier). The n×d matrix must never appear.
    let kconfig = KMeansConfig::new(8);
    let tier = MiniBatchConfig::default(); // threshold 20k < n: streaming tier engages
    let baseline = live_bytes();
    reset_peak();
    let clustering = kmeans_tiered_sharded(&projected1, &kconfig, &tier).expect("tiered fit");
    let ranked = clustering
        .members_by_centroid_distance_sharded(&projected1)
        .expect("ranking");
    let cluster_peak = peak_bytes().saturating_sub(baseline);
    assert_eq!(ranked.iter().map(Vec::len).sum::<usize>(), n);
    let dense_plane_bytes = 8 * n * d;
    let cluster_bound = 4 * 8 * n * k + 8 * 8 * n + (4 << 20);
    println!(
        "  residency: cluster+reps peak +{:.2} MiB (bound {:.2} MiB, n x d plane {:.2} MiB)",
        cluster_peak as f64 / (1 << 20) as f64,
        cluster_bound as f64 / (1 << 20) as f64,
        dense_plane_bytes as f64 / (1 << 20) as f64
    );
    assert!(
        cluster_peak <= cluster_bound,
        "cluster/reps peak {cluster_peak} B exceeds O(n*k)+O(n) bound {cluster_bound} B"
    );
    assert!(
        cluster_peak < dense_plane_bytes,
        "cluster/reps peak {cluster_peak} B reaches the n*d plane {dense_plane_bytes} B"
    );

    // --- Machine-readable results ------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"abl20_par_featurize\",\n  \"mode\": \"{mode}\",\n  \
         \"config\": {{\"n\": {n}, \"d\": {d}, \"shard_rows\": {shard_rows}, \
         \"variance_threshold\": {variance_threshold}, \"cores\": {cores}}},\n  \
         \"identity\": {{\"thread_counts\": [1, 2, 3, 8], \"bitwise_equal\": true, \
         \"spilled_prefetch_bitwise_equal\": true}},\n  \
         \"speedup\": {{\"serial_ns\": {serial_ns}, \"par8_ns\": {par_ns}, \
         \"speedup\": {speedup:.3}, \"gate_enforced\": {gate_enforced}}},\n  \
         \"prefetch\": {{\"prefetch_hits\": {ph}, \"hits\": {hits}, \"faults\": {faults}, \
         \"hit_rate\": {hr:.3}}},\n  \
         \"cluster_residency\": {{\"k\": {k}, \"peak_bytes\": {cluster_peak}, \
         \"bound_bytes\": {cluster_bound}, \"dense_plane_bytes\": {dense_plane_bytes}}}\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        ph = spill_stats.prefetch_hits,
        hits = spill_stats.hits,
        faults = spill_stats.faults,
        hr = spill_stats.hit_rate(),
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/BENCH_par.json");
    std::fs::write(out, &json).expect("write BENCH_par.json");
    println!("\nwrote {out}");

    println!(
        "\ntakeaway: the featurize moment passes fan out per shard and fold\n\
         back in shard-index order, so 1, 2, 3, and 8 threads produce the\n\
         same bits while 8 threads cut the wall clock >=2x; the prefetcher\n\
         hides spill latency without touching a byte of the model, and the\n\
         sharded n x k plane keeps cluster/representative memory off the\n\
         n x d axis entirely."
    );
}
