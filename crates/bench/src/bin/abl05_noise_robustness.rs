//! Ablation 5: measurement-noise robustness — production telemetry is far
//! noisier than a lab; how much profiler noise can FLARE's clustering
//! tolerate before the representative set stops summarizing the corpus?
//!
//! Extra multiplicative Gaussian noise is injected into the *collected
//! metric database* (the analysis input) while the ground truth and the
//! replay measurements stay clean — isolating the Analyzer's robustness.

use flare_baselines::fulldc::full_datacenter_impact;
use flare_bench::banner;
use flare_core::analyzer::Analyzer;
use flare_core::estimate::estimate_all_job;
use flare_core::replayer::SimTestbed;
use flare_core::FlareConfig;
use flare_metrics::database::{IngestPolicy, MetricDatabase};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::faults::{FaultInjector, FaultPlan};
use flare_sim::feature::Feature;

/// Injects multiplicative Gaussian noise of relative std `sigma` into
/// every metric value via the shared telemetry fault model (noise channel
/// only — nothing is dropped or quarantined).
fn noisy_database(db: &MetricDatabase, sigma: f64, seed: u64) -> MetricDatabase {
    let injector = FaultInjector::new(FaultPlan {
        seed,
        noise_rel_std: sigma,
        ..FaultPlan::default()
    })
    .expect("valid noise-only plan");
    let (out, report) = injector.corrupt_database(db, &IngestPolicy::default());
    assert!(report.is_clean(), "noise-only plan quarantined records");
    out
}

fn main() {
    banner(
        "Ablation: Analyzer robustness to profiler measurement noise",
        "§4.2 (the paper defers noise handling to its monitoring citations)",
    );
    let corpus_cfg = CorpusConfig::default();
    let corpus = Corpus::generate(&corpus_cfg);
    let baseline = corpus_cfg.machine_config.clone();
    let clean_db = corpus.to_metric_database(&baseline);
    let config = FlareConfig::default();

    println!("\n  {:>9} | error vs ground truth (pp)", "extra σ");
    println!(
        "  {:>9} | {:>8} {:>8} {:>8} {:>8}",
        "", "F1", "F2", "F3", "mean"
    );
    for sigma in [0.0, 0.02, 0.05, 0.10, 0.20, 0.40] {
        let db = if sigma == 0.0 {
            clean_db.clone()
        } else {
            noisy_database(&clean_db, sigma, 99)
        };
        let analyzer = Analyzer::fit(&db, &config).expect("fit");
        let mut errs = Vec::new();
        for feature in Feature::paper_features() {
            let fc = feature.apply(&baseline);
            let truth =
                full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
            let est = estimate_all_job(&corpus, &analyzer, &SimTestbed, &baseline, &fc, true)
                .expect("estimate")
                .impact_pct;
            errs.push((est - truth).abs());
        }
        let mean = errs.iter().sum::<f64>() / errs.len() as f64;
        println!(
            "  {:>8.0}% | {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            sigma * 100.0,
            errs[0],
            errs[1],
            errs[2],
            mean
        );
    }
    println!(
        "\ntakeaway: clustering on z-scored PCs degrades gracefully — errors stay within\n\
         a few pp up to heavy (>10%) telemetry noise, because representative selection\n\
         only needs the *relative* geometry of scenarios to survive."
    );
}
