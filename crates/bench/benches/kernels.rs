//! Criterion micro-benchmarks of FLARE's computational kernels — the
//! numbers behind the "fast and lightweight" claim: the entire analysis
//! costs milliseconds-to-seconds on corpus-scale data.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use flare_cluster::kmeans::{kmeans, KMeansConfig};
use flare_cluster::quality::silhouette_score;
use flare_linalg::eigen::symmetric_eigen;
use flare_linalg::pca::{covariance, Pca};
use flare_linalg::Matrix;
use flare_metrics::correlation::refine;
use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
use flare_metrics::schema::MetricSchema;

/// Deterministic pseudo-random corpus-scale matrix (1 000 × d).
fn corpus_matrix(n: usize, d: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..d)
                .map(|j| {
                    let x = (i * 31 + j * 17) as f64;
                    (x * 0.13).sin() * 50.0 + (j % 7) as f64 * 10.0
                })
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).expect("rectangular")
}

fn corpus_database(n: usize) -> MetricDatabase {
    let schema = MetricSchema::canonical();
    let d = schema.len();
    let m = corpus_matrix(n, d);
    let mut db = MetricDatabase::new(schema);
    for i in 0..n {
        db.insert(ScenarioRecord {
            id: ScenarioId(i as u32),
            metrics: m.row(i).to_vec(),
            observations: 1,
            job_mix: vec![],
        })
        .expect("schema-aligned");
    }
    db
}

fn bench_eigen(c: &mut Criterion) {
    let data = corpus_matrix(200, 66);
    let cov = covariance(&data).expect("covariance");
    c.bench_function("jacobi_eigen_66x66", |b| {
        b.iter(|| symmetric_eigen(&cov).expect("symmetric"))
    });
    // The truncated solver for enriched (wider) metric spaces: full Jacobi
    // vs top-18 power iteration at 134 columns (temporal enrichment size).
    let wide = corpus_matrix(200, 134);
    let wide_cov = covariance(&wide).expect("covariance");
    let mut group = c.benchmark_group("eigen_wide_134");
    group.sample_size(20);
    group.bench_function("jacobi_full", |b| {
        b.iter(|| symmetric_eigen(&wide_cov).expect("symmetric"))
    });
    group.bench_function("power_iteration_top18", |b| {
        b.iter(|| flare_linalg::eigen::symmetric_eigen_top_k(&wide_cov, 18).expect("top-k"))
    });
    group.finish();
}

fn bench_kmeans_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_scaling");
    group.sample_size(10);
    for n in [250usize, 1000, 4000] {
        let data = corpus_matrix(n, 18);
        let config = KMeansConfig::new(18).with_restarts(2);
        group.bench_function(format!("n{n}_k18"), |b| {
            b.iter(|| kmeans(&data, &config).expect("kmeans"))
        });
    }
    group.finish();
}

fn bench_pca(c: &mut Criterion) {
    let data = corpus_matrix(1000, 106);
    c.bench_function("pca_fit_1000x106", |b| {
        b.iter(|| Pca::fit(&data).expect("pca"))
    });
    let pca = Pca::fit(&data).expect("pca");
    c.bench_function("pca_transform_whitened_1000x106_k18", |b| {
        b.iter(|| pca.transform_whitened(&data, 18).expect("projection"))
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let data = corpus_matrix(1000, 18);
    let config = KMeansConfig::new(18).with_restarts(4);
    c.bench_function("kmeans_k18_1000x18", |b| {
        b.iter(|| kmeans(&data, &config).expect("kmeans"))
    });
    let result = kmeans(&data, &config).expect("kmeans");
    let mut group = c.benchmark_group("quality");
    group.sample_size(10);
    group.bench_function("silhouette_1000x18", |b| {
        b.iter(|| silhouette_score(&data, &result.assignments, 18).expect("silhouette"))
    });
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let db = corpus_database(1000);
    let mut group = c.benchmark_group("refinement");
    group.sample_size(20);
    group.bench_function("correlation_refine_1000x106", |b| {
        b.iter_batched(
            || db.clone(),
            |db| refine(&db, 0.98).expect("refine"),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(
    kernels,
    bench_eigen,
    bench_pca,
    bench_kmeans,
    bench_kmeans_scaling,
    bench_refine
);
criterion_main!(kernels);
