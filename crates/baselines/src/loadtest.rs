//! Conventional (colocation-unaware) load-testing: the §3.1 baseline.
//!
//! "Similar to previous works, we populate instances of each service on a
//! single machine and measure the feature's impact on it." The pitfall the
//! paper demonstrates (Fig. 2) is that this single-service measurement can
//! deviate wildly from the in-datacenter impact because it ignores
//! interference from co-located jobs.

use flare_core::replayer::{replay_job_impact, Testbed};
use flare_sim::machine::MachineConfig;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;
use flare_workloads::loadgen::load_test_instances;
use serde::{Deserialize, Serialize};

/// A load-testing measurement for one service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadTestResult {
    /// The service measured.
    pub job: JobName,
    /// Instances populated on the machine.
    pub instances: u32,
    /// Measured MIPS reduction of the feature, %.
    pub impact_pct: f64,
}

/// Measures a feature's impact on `job` with the conventional recipe:
/// fill one machine with instances of the service alone, run under
/// baseline and feature configurations, compare.
///
/// Returns `None` for LP jobs (their performance is unmanaged).
pub fn load_test_impact<T: Testbed>(
    testbed: &T,
    job: JobName,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
) -> Option<LoadTestResult> {
    let instances = load_test_instances(job, baseline.schedulable_vcpus());
    let scenario = Scenario::from_instances(&instances);
    let impact = replay_job_impact(testbed, &scenario, job, baseline, feature_config)?;
    Some(LoadTestResult {
        job,
        instances: instances.len() as u32,
        impact_pct: impact,
    })
}

/// Load-tests every HP service (the bar set of Fig. 2).
///
/// With a shared [`flare_core::replayer::CachedSimTestbed`], a repeated
/// sweep (another feature comparison over the same baseline, a report that
/// re-runs the bar set) reuses every single-service solve instead of
/// re-simulating it, with byte-identical results.
pub fn load_test_all_hp<T: Testbed>(
    testbed: &T,
    baseline: &MachineConfig,
    feature_config: &MachineConfig,
) -> Vec<LoadTestResult> {
    JobName::HIGH_PRIORITY
        .iter()
        .filter_map(|&j| load_test_impact(testbed, j, baseline, feature_config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flare_core::replayer::{CachedSimTestbed, SimTestbed};
    use flare_sim::feature::Feature;
    use flare_sim::machine::MachineShape;

    fn baseline() -> MachineConfig {
        MachineShape::default_shape().baseline_config()
    }

    #[test]
    fn load_test_fills_the_machine() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let r = load_test_impact(&SimTestbed, JobName::WebSearch, &b, &f1).unwrap();
        assert_eq!(r.instances, 12); // 48 vCPUs / 4
        assert!(r.impact_pct.is_finite());
    }

    #[test]
    fn lp_jobs_not_measured() {
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        assert!(load_test_impact(&SimTestbed, JobName::Mcf, &b, &f1).is_none());
    }

    #[test]
    fn all_hp_measured() {
        let b = baseline();
        let f2 = Feature::paper_feature2().apply(&b);
        let results = load_test_all_hp(&SimTestbed, &b, &f2);
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(r.impact_pct > 0.0, "{}: {}%", r.job, r.impact_pct);
        }
    }

    #[test]
    fn shared_cache_reproduces_the_bar_set_bitwise() {
        let b = baseline();
        let f2 = Feature::paper_feature2().apply(&b);
        let truth = load_test_all_hp(&SimTestbed, &b, &f2);
        let cached = CachedSimTestbed::new();
        let first = load_test_all_hp(&cached, &b, &f2);
        assert_eq!(first, truth, "cached bar set must match the plain testbed");
        let before = cached.stats();
        let second = load_test_all_hp(&cached, &b, &f2);
        assert_eq!(second, truth);
        let after = cached.stats();
        assert_eq!(after.misses, before.misses, "warm sweep re-solved");
        // Each job replays twice (baseline + feature); the warm sweep must
        // serve every one of those solves from the cache.
        assert_eq!(after.hits, before.hits + 2 * truth.len() as u64);
    }

    #[test]
    fn load_test_differs_from_mixed_colocation() {
        // The Fig. 2 pitfall: a machine full of one service behaves unlike
        // the same service colocated with a realistic mix.
        let b = baseline();
        let f1 = Feature::paper_feature1().apply(&b);
        let solo = load_test_impact(&SimTestbed, JobName::MediaStreaming, &b, &f1)
            .unwrap()
            .impact_pct;
        let mixed_scenario = Scenario::from_counts([
            (JobName::MediaStreaming, 2),
            (JobName::GraphAnalytics, 4),
            (JobName::Mcf, 4),
        ]);
        let mixed = replay_job_impact(
            &SimTestbed,
            &mixed_scenario,
            JobName::MediaStreaming,
            &b,
            &f1,
        )
        .unwrap();
        assert!(
            (solo - mixed).abs() > 0.5,
            "load-testing ({solo}%) should mispredict the mixed case ({mixed}%)"
        );
    }
}
