//! End-to-end integration tests: the paper's headline claims on a
//! medium-size corpus (kept below the full 8×7 default so the suite stays
//! fast in debug builds).

use flare::baselines::fulldc::full_datacenter_impact;
use flare::baselines::sampling::{sampling_distribution, SamplingConfig};
use flare::prelude::*;

fn medium_corpus_config() -> CorpusConfig {
    CorpusConfig {
        machines: 6,
        days: 3.0,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    }
}

fn fitted() -> (Flare, CorpusConfig) {
    let cfg = medium_corpus_config();
    let corpus = Corpus::generate(&cfg);
    let flare = Flare::fit(corpus, FlareConfig::default()).expect("fit");
    (flare, cfg)
}

#[test]
fn flare_estimates_all_features_accurately() {
    let (flare, cfg) = fitted();
    let baseline = &cfg.machine_config;
    for feature in Feature::paper_features() {
        let feature_config = feature.apply(baseline);
        let truth =
            full_datacenter_impact(flare.corpus(), &SimTestbed, baseline, &feature_config, true);
        let estimate = flare.evaluate(&feature).expect("estimate");
        let err = (estimate.impact_pct - truth.impact_pct).abs();
        assert!(
            err < 2.0,
            "{feature}: FLARE error {err:.2}pp (truth {:.2}%, estimate {:.2}%)",
            truth.impact_pct,
            estimate.impact_pct
        );
        // Cost: ~18 replays vs hundreds.
        assert!(estimate.replay_count * 10 < truth.evaluation_cost);
    }
}

#[test]
fn flare_beats_equal_cost_sampling_in_expectation() {
    let (flare, cfg) = fitted();
    let baseline = &cfg.machine_config;
    let mut flare_wins = 0;
    for feature in Feature::paper_features() {
        let feature_config = feature.apply(baseline);
        let truth =
            full_datacenter_impact(flare.corpus(), &SimTestbed, baseline, &feature_config, true);
        let estimate = flare.evaluate(&feature).expect("estimate");
        let dist = sampling_distribution(
            flare.corpus(),
            &SimTestbed,
            baseline,
            &feature_config,
            &SamplingConfig {
                n_samples: flare.n_representatives(),
                trials: 300,
                ..SamplingConfig::default()
            },
        )
        .expect("population");
        let flare_err = (estimate.impact_pct - truth.impact_pct).abs();
        if flare_err < dist.expected_max_error(truth.impact_pct) {
            flare_wins += 1;
        }
    }
    assert!(
        flare_wins >= 2,
        "FLARE should beat sampling's expected max error on most features ({flare_wins}/3)"
    );
}

#[test]
fn per_job_estimates_track_truth() {
    let (flare, cfg) = fitted();
    let baseline = &cfg.machine_config;
    let feature = Feature::paper_feature2();
    let feature_config = feature.apply(baseline);
    for &job in JobName::HIGH_PRIORITY {
        let truth = flare::baselines::fulldc::full_datacenter_job_impact(
            flare.corpus(),
            &SimTestbed,
            job,
            baseline,
            &feature_config,
            true,
        )
        .expect("job in corpus");
        let estimate = flare.evaluate_job(job, &feature).expect("estimate");
        let err = (estimate.impact_pct - truth).abs();
        // Per-job estimates are allowed to be looser (§5.3) but must be in
        // the right ballpark.
        assert!(
            err < 5.0,
            "{job}: per-job error {err:.2}pp (truth {truth:.2}%)"
        );
    }
}

#[test]
fn pipeline_is_deterministic() {
    let cfg = medium_corpus_config();
    let a = Flare::fit(Corpus::generate(&cfg), FlareConfig::default()).expect("fit A");
    let b = Flare::fit(Corpus::generate(&cfg), FlareConfig::default()).expect("fit B");
    assert_eq!(a.corpus().entries(), b.corpus().entries());
    assert_eq!(
        a.analyzer().representatives(),
        b.analyzer().representatives()
    );
    let feature = Feature::paper_feature1();
    let ea = a.evaluate(&feature).expect("estimate A");
    let eb = b.evaluate(&feature).expect("estimate B");
    assert_eq!(ea.impact_pct, eb.impact_pct);
}

#[test]
fn refinement_and_pca_have_paper_scale() {
    let (flare, _) = fitted();
    let analyzer = flare.analyzer();
    // 106 raw -> refined below 106 but well above the PC count.
    let refined = analyzer.refined_schema().len();
    assert!(refined < 106 && refined > 30, "refined = {refined}");
    // A double-digit number of PCs explains 95% (paper: 18).
    assert!(
        (8..=30).contains(&analyzer.n_pcs()),
        "kept PCs = {}",
        analyzer.n_pcs()
    );
    // 18 representatives as configured.
    assert_eq!(flare.n_representatives(), 18);
}

#[test]
fn baseline_feature_is_a_noop_everywhere() {
    let (flare, _) = fitted();
    let estimate = flare.evaluate(&Feature::Baseline).expect("estimate");
    assert!(estimate.impact_pct.abs() < 1e-9);
    for c in &estimate.clusters {
        assert!(c.impact_pct.abs() < 1e-9);
    }
}

#[test]
fn flare_generalizes_across_environments() {
    // The recipe (default FlareConfig) must hold up on corpora it was not
    // tuned on: different load level, batch pressure, and seed.
    use flare::baselines::fulldc::full_datacenter_impact;
    let environments = [
        CorpusConfig {
            machines: 5,
            days: 3.0,
            tick_minutes: 15.0,
            hp_peak_share: 0.09,
            lp_submit_prob: 0.05,
            seed: 0xE17,
            ..CorpusConfig::default()
        },
        CorpusConfig {
            machines: 5,
            days: 3.0,
            tick_minutes: 15.0,
            hp_peak_share: 0.07,
            lp_submit_prob: 0.25,
            seed: 0xF00,
            ..CorpusConfig::default()
        },
    ];
    for cfg in environments {
        let corpus = Corpus::generate(&cfg);
        let baseline = cfg.machine_config.clone();
        let flare = Flare::fit(corpus.clone(), FlareConfig::default()).expect("fit");
        for feature in Feature::paper_features() {
            let fc = feature.apply(&baseline);
            let truth =
                full_datacenter_impact(&corpus, &SimTestbed, &baseline, &fc, true).impact_pct;
            let est = flare.evaluate(&feature).expect("estimate").impact_pct;
            assert!(
                (est - truth).abs() < 2.5,
                "seed {:x} {feature}: err {:.2}pp (truth {truth:.2}, est {est:.2})",
                cfg.seed,
                (est - truth).abs()
            );
        }
    }
}
