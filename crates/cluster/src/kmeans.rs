//! K-means clustering with k-means++ initialization.
//!
//! This is the clustering method FLARE's Analyzer uses (§4.4): after PCA
//! projection and whitening, scenarios are grouped with K-means, and the
//! scenario nearest each centroid becomes the group's *representative
//! scenario*.

use crate::distance::{nearest_centroid, squared_euclidean};
use crate::error::{ClusterError, Result};
use crate::kernel::{
    assign_rows, nearest_distance_flat, point_norms, squared_euclidean_bounded, sse_flat,
    CentroidBuffer, LloydScratch,
};
use flare_exec::{par_map_range, resolve_threads};
use flare_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for a K-means run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iters: usize,
    /// Number of independent k-means++ restarts; the run with the lowest
    /// SSE wins. More restarts reduce initialization luck.
    pub restarts: usize,
    /// Convergence threshold on total centroid movement (squared) between
    /// iterations.
    pub tolerance: f64,
    /// RNG seed: K-means is fully deterministic given the seed. Restart
    /// `i` draws from its own stream seeded with `seed + i`, so the result
    /// is also independent of how restarts are scheduled across threads.
    pub seed: u64,
    /// Worker threads for the restart fan-out: `None` = available
    /// parallelism, `Some(1)` = serial. Purely a wall-clock knob — every
    /// setting yields the identical clustering. Not part of older
    /// serialized configs, so it defaults to `None` on deserialization.
    #[serde(default)]
    pub threads: Option<usize>,
}

impl KMeansConfig {
    /// A sensible default configuration for `k` clusters.
    pub fn new(k: usize) -> Self {
        KMeansConfig {
            k,
            max_iters: 200,
            restarts: 8,
            tolerance: 1e-10,
            seed: 0xF1A7E,
            threads: None,
        }
    }

    /// Replaces the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the restart count (builder-style).
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Replaces the thread knob (builder-style).
    pub fn with_threads(mut self, threads: Option<usize>) -> Self {
        self.threads = threads;
        self
    }
}

/// Result of a K-means clustering.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster centroids (k points of the input dimensionality).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment per input row.
    pub assignments: Vec<usize>,
    /// Sum of squared errors (the K-means objective) of the final model.
    pub sse: f64,
    /// Lloyd iterations used by the winning restart.
    pub iterations: usize,
}

impl KMeansResult {
    /// Builds a clustering result from an externally produced assignment
    /// (e.g. a hierarchical-dendrogram cut): centroids are member means
    /// and SSE is computed against them. This lets alternative algorithms
    /// reuse every representative-extraction helper on this type.
    ///
    /// # Errors
    ///
    /// - [`ClusterError::DimensionMismatch`] if `assignments.len() !=
    ///   data.nrows()`.
    /// - [`ClusterError::InvalidParameter`] if an assignment is `>= k`.
    pub fn from_assignments(data: &Matrix, assignments: Vec<usize>, k: usize) -> Result<Self> {
        if assignments.len() != data.nrows() {
            return Err(ClusterError::DimensionMismatch(format!(
                "{} assignments for {} points",
                assignments.len(),
                data.nrows()
            )));
        }
        if let Some(&bad) = assignments.iter().find(|&&a| a >= k) {
            return Err(ClusterError::InvalidParameter(format!(
                "assignment {bad} out of range for k={k}"
            )));
        }
        let centroids = crate::sweep::centroids_of(data, &assignments, k);
        let sse = compute_sse(data, &centroids, &assignments);
        Ok(KMeansResult {
            centroids,
            assignments,
            sse,
            iterations: 0,
        })
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster sizes (number of member points per cluster).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Cluster weights: size / total, the weighting FLARE uses to aggregate
    /// representative impacts (§4.5).
    pub fn cluster_weights(&self) -> Vec<f64> {
        let n = self.assignments.len() as f64;
        self.cluster_sizes()
            .into_iter()
            .map(|s| s as f64 / n)
            .collect()
    }

    /// Indices of the member points of cluster `c`.
    pub fn members(&self, c: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| (a == c).then_some(i))
            .collect()
    }

    /// Row indices of each cluster's members sorted by ascending distance
    /// to that cluster's centroid.
    ///
    /// `ranked[c][0]` is the *representative scenario* of cluster `c`; the
    /// rest are the "next nearest" fallbacks FLARE's per-job estimation
    /// walks when the representative lacks the job of interest (§5.3).
    pub fn members_by_centroid_distance(&self, data: &Matrix) -> Vec<Vec<usize>> {
        let mut ranked: Vec<Vec<usize>> = vec![Vec::new(); self.centroids.len()];
        for (i, &a) in self.assignments.iter().enumerate() {
            ranked[a].push(i);
        }
        for (c, members) in ranked.iter_mut().enumerate() {
            // Each member's distance is computed once, not once per sort
            // comparison (the comparator used to pay O(m log m) distance
            // evaluations per cluster). total_cmp: NaN distances
            // (degenerate external assignments, e.g. via
            // `from_assignments` on unvetted data) sort last instead of
            // panicking; the stable sort keeps equal distances in
            // ascending row order, exactly like the comparator-based sort
            // did.
            let mut scored: Vec<(f64, usize)> = members
                .iter()
                .map(|&m| (squared_euclidean(data.row(m), &self.centroids[c]), m))
                .collect();
            scored.sort_by(|a, b| a.0.total_cmp(&b.0));
            members.clear();
            members.extend(scored.into_iter().map(|(_, m)| m));
        }
        ranked
    }

    /// The representative row index of each cluster (nearest to centroid).
    /// Empty clusters yield no entry, so use with `cluster_sizes` when k was
    /// larger than the number of distinct points.
    pub fn representatives(&self, data: &Matrix) -> Vec<Option<usize>> {
        self.members_by_centroid_distance(data)
            .into_iter()
            .map(|m| m.first().copied())
            .collect()
    }
}

/// Runs K-means on the rows of `data`.
///
/// # Errors
///
/// - [`ClusterError::InvalidParameter`] if `config.k == 0` or
///   `config.max_iters == 0`.
/// - [`ClusterError::TooFewPoints`] if `data.nrows() < config.k`.
/// - [`ClusterError::NonFinite`] if `data` contains NaN/∞.
///
/// # Examples
///
/// ```
/// use flare_cluster::kmeans::{kmeans, KMeansConfig};
/// use flare_linalg::Matrix;
///
/// let data = Matrix::from_rows(&[
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![10.0, 10.0], vec![10.1, 10.0],
/// ]).unwrap();
/// let result = kmeans(&data, &KMeansConfig::new(2)).unwrap();
/// assert_eq!(result.assignments[0], result.assignments[1]);
/// assert_ne!(result.assignments[0], result.assignments[2]);
/// ```
pub fn kmeans(data: &Matrix, config: &KMeansConfig) -> Result<KMeansResult> {
    validate(data, config)?;
    let restarts = config.restarts.max(1);
    // The thread budget is split between the restart fan-out and the
    // intra-restart assignment kernel: `outer` restarts run concurrently,
    // each with `inner` assignment workers. When `restarts < cores` (the
    // common case at FLARE's k ≈ 10) the leftover cores accelerate the
    // assignment step *inside* each restart. Purely a wall-clock split:
    // every (outer, inner) combination yields identical output.
    let workers = resolve_threads(config.threads);
    let outer = workers.min(restarts);
    let inner = (workers / outer).max(1);
    // Point norms depend only on the data — computed once, shared
    // read-only across restarts.
    let x_norms = point_norms(data);
    // Each restart derives its RNG from `seed + restart_index`, so restart
    // i produces the same run whether it executes on the calling thread or
    // a worker — the winner is identical for every thread count.
    let runs = par_map_range(restarts, Some(outer), |i| {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
        lloyd(data, config, &mut rng, &x_norms, Some(inner))
    });
    // Lowest SSE wins; ties break toward the lowest restart index (the
    // serial first-wins rule).
    let best = runs
        .into_iter()
        .reduce(|best, run| if run.sse < best.sse { run } else { best })
        .expect("at least one restart");
    Ok(best)
}

/// The naive reference K-means: identical semantics to [`kmeans`] but with
/// the pre-kernel implementation — `Vec<Vec<f64>>` centroid storage, a
/// full O(k·d) scan per assignment, per-iteration accumulator
/// allocations, and no intra-restart parallelism.
///
/// This is **not** the fast path; it exists as the differential-testing
/// oracle (the pruned kernel must be byte-identical to it for every input)
/// and as the baseline the `abl14_cluster_kernels` bench measures the
/// kernel layer against.
///
/// # Errors
///
/// Same conditions as [`kmeans`].
pub fn kmeans_naive(data: &Matrix, config: &KMeansConfig) -> Result<KMeansResult> {
    validate(data, config)?;
    let runs = par_map_range(config.restarts.max(1), config.threads, |i| {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(i as u64));
        lloyd_naive(data, config, &mut rng)
    });
    let best = runs
        .into_iter()
        .reduce(|best, run| if run.sse < best.sse { run } else { best })
        .expect("at least one restart");
    Ok(best)
}

pub(crate) fn validate(data: &Matrix, config: &KMeansConfig) -> Result<()> {
    if config.k == 0 {
        return Err(ClusterError::InvalidParameter("k must be >= 1".into()));
    }
    if config.threads == Some(0) {
        return Err(ClusterError::InvalidParameter(
            "threads must be >= 1 when set (None = available parallelism)".into(),
        ));
    }
    if config.max_iters == 0 {
        return Err(ClusterError::InvalidParameter(
            "max_iters must be >= 1".into(),
        ));
    }
    if data.nrows() < config.k {
        return Err(ClusterError::TooFewPoints {
            points: data.nrows(),
            k: config.k,
        });
    }
    if !data.is_finite() {
        return Err(ClusterError::NonFinite("kmeans input".into()));
    }
    Ok(())
}

/// One restart: k-means++ seeding followed by Lloyd iterations, on the
/// exact-pruned kernel layer (`crate::kernel`).
///
/// Byte-identical to [`lloyd_naive`] by construction: the k-means++ draws
/// consume the RNG identically, the pruned assignment confirms every
/// surviving candidate with the same scalar distance kernel under the
/// same lowest-index tie-break, the flat update step accumulates in the
/// same row order, and SSE sums in the same order. The differential
/// proptest in `tests/proptest_cluster.rs` holds this equivalence to the
/// serialized byte level.
fn lloyd(
    data: &Matrix,
    config: &KMeansConfig,
    rng: &mut StdRng,
    x_norms: &[f64],
    assign_threads: Option<usize>,
) -> KMeansResult {
    let centroids = kmeans_pp_init_flat(data, config.k, rng);
    lloyd_from(data, config, centroids, x_norms, assign_threads)
}

/// Lloyd iterations from an externally supplied initial centroid set — the
/// seam the mini-batch tier (`crate::minibatch`) uses to warm-start the
/// exact-pruned kernel for its final full-data passes. Identical to the
/// post-seeding body of [`lloyd`] (which now delegates here); needs no RNG
/// because the only data-dependent choice after seeding — the
/// empty-cluster reseed — is a deterministic farthest-point selection.
pub(crate) fn lloyd_from(
    data: &Matrix,
    config: &KMeansConfig,
    mut centroids: CentroidBuffer,
    x_norms: &[f64],
    assign_threads: Option<usize>,
) -> KMeansResult {
    let n = data.nrows();
    let d = data.ncols();
    let k = config.k;
    let mut scratch = LloydScratch::new(k, d);
    let mut assignments = vec![0usize; n];

    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step: norm-bound pruned, warm-started from the
        // previous iteration's assignments, row-chunked across
        // `assign_threads` workers.
        centroids.norms_into(&mut scratch.centroid_norms);
        assign_rows(
            data,
            x_norms,
            &centroids,
            &scratch.centroid_norms,
            &mut assignments,
            assign_threads,
        );
        // Update step, accumulating into the reused flat scratch arena.
        scratch.reset_accumulators();
        for (i, &a) in assignments.iter().enumerate() {
            scratch.counts[a] += 1;
            for (s, v) in scratch.sums[a * d..(a + 1) * d].iter_mut().zip(data.row(i)) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..k {
            if scratch.counts[c] == 0 {
                // Empty cluster: re-seed it at the point farthest from its
                // nearest centroid, the standard fix that keeps k
                // constant. Each point's nearest-centroid distance is
                // computed once per reseed (the naive version used to
                // recompute full scans inside the argmax comparator);
                // max_by + total_cmp keeps the selection identical —
                // the *last* point among equal maxima wins. The buffer is
                // mid-update here (clusters < c hold new means), exactly
                // like the naive in-place update sequence.
                let d_near: Vec<f64> = (0..n)
                    .map(|i| nearest_distance_flat(data.row(i), &centroids))
                    .collect();
                let far = (0..n)
                    .max_by(|&x, &y| d_near[x].total_cmp(&d_near[y]))
                    .expect("n >= k >= 1");
                movement += squared_euclidean(centroids.row(c), data.row(far));
                centroids.set_row(c, data.row(far));
                continue;
            }
            let count = scratch.counts[c] as f64;
            for (m, s) in scratch
                .mean
                .iter_mut()
                .zip(&scratch.sums[c * d..(c + 1) * d])
            {
                *m = s / count;
            }
            movement += squared_euclidean(centroids.row(c), &scratch.mean);
            centroids.set_row(c, &scratch.mean);
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids.
    centroids.norms_into(&mut scratch.centroid_norms);
    assign_rows(
        data,
        x_norms,
        &centroids,
        &scratch.centroid_norms,
        &mut assignments,
        assign_threads,
    );
    let sse = sse_flat(data, &centroids, &assignments);
    KMeansResult {
        centroids: centroids.to_rows(),
        assignments,
        sse,
        iterations,
    }
}

/// One naive restart: the pre-kernel reference implementation (see
/// [`kmeans_naive`]). The only change from the historical code is the
/// empty-cluster reseed, which now precomputes each point's
/// nearest-centroid distance once instead of recomputing two full O(k·d)
/// scans inside every argmax comparison — `total_cmp` over the same
/// values selects the identical point.
fn lloyd_naive(data: &Matrix, config: &KMeansConfig, rng: &mut StdRng) -> KMeansResult {
    let mut centroids = kmeans_pp_init(data, config.k, rng);
    let n = data.nrows();
    let d = data.ncols();
    let mut assignments = vec![0usize; n];

    let mut iterations = 0;
    for iter in 0..config.max_iters {
        iterations = iter + 1;
        // Assignment step.
        for (i, a) in assignments.iter_mut().enumerate() {
            *a = nearest_centroid(data.row(i), &centroids)
                .expect("k >= 1 centroids")
                .0;
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; d]; config.k];
        let mut counts = vec![0usize; config.k];
        for (i, &a) in assignments.iter().enumerate() {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(data.row(i)) {
                *s += v;
            }
        }
        let mut movement = 0.0;
        for c in 0..config.k {
            if counts[c] == 0 {
                let d_near: Vec<f64> = (0..n)
                    .map(|i| {
                        nearest_centroid(data.row(i), &centroids)
                            .expect("nonempty")
                            .1
                    })
                    .collect();
                let far = (0..n)
                    .max_by(|&x, &y| d_near[x].total_cmp(&d_near[y]))
                    .expect("n >= k >= 1");
                movement += squared_euclidean(&centroids[c], data.row(far));
                centroids[c] = data.row(far).to_vec();
                continue;
            }
            let new: Vec<f64> = sums[c].iter().map(|s| s / counts[c] as f64).collect();
            movement += squared_euclidean(&centroids[c], &new);
            centroids[c] = new;
        }
        if movement <= config.tolerance {
            break;
        }
    }

    // Final assignment against the converged centroids.
    for (i, a) in assignments.iter_mut().enumerate() {
        *a = nearest_centroid(data.row(i), &centroids)
            .expect("k >= 1 centroids")
            .0;
    }
    let sse = compute_sse(data, &centroids, &assignments);
    KMeansResult {
        centroids,
        assignments,
        sse,
        iterations,
    }
}

/// k-means++ seeding: first centroid uniform, subsequent centroids sampled
/// proportionally to squared distance from the nearest chosen centroid.
fn kmeans_pp_init(data: &Matrix, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = data.nrows();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data.row(rng.gen_range(0..n)).to_vec());

    let mut d2: Vec<f64> = (0..n)
        .map(|i| squared_euclidean(data.row(i), &centroids[0]))
        .collect();

    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(data.row(next).to_vec());
        for (i, slot) in d2.iter_mut().enumerate() {
            let nd = squared_euclidean(data.row(i), centroids.last().expect("just pushed"));
            if nd < *slot {
                *slot = nd;
            }
        }
    }
    centroids
}

/// Flat-buffer k-means++ seeding: mirrors [`kmeans_pp_init`] draw for
/// draw — the same RNG consumption, the same selection arithmetic, the
/// same distance kernel — but writes centroids into a [`CentroidBuffer`]
/// instead of per-centroid heap allocations.
fn kmeans_pp_init_flat(data: &Matrix, k: usize, rng: &mut StdRng) -> CentroidBuffer {
    let n = data.nrows();
    let d = data.ncols();
    let mut flat: Vec<f64> = Vec::with_capacity(k * d);
    flat.extend_from_slice(data.row(rng.gen_range(0..n)));
    let mut filled = 1usize;

    let mut d2: Vec<f64> = (0..n)
        .map(|i| squared_euclidean(data.row(i), &flat[..d]))
        .collect();

    while filled < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::EPSILON {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        flat.extend_from_slice(data.row(next));
        filled += 1;
        let last = &flat[(filled - 1) * d..filled * d];
        for (i, slot) in d2.iter_mut().enumerate() {
            // Bounded confirm: a partial sum already above the current
            // nearest-centroid distance can never lower it (monotone
            // non-negative accumulation), so the scan aborts early with
            // the identical `d2` outcome as the naive full distance.
            if let Some(nd) = squared_euclidean_bounded(data.row(i), last, *slot) {
                if nd < *slot {
                    *slot = nd;
                }
            }
        }
    }
    CentroidBuffer::from_flat(k, d, flat)
}

/// Sum of squared distances from each point to its assigned centroid.
pub fn compute_sse(data: &Matrix, centroids: &[Vec<f64>], assignments: &[usize]) -> f64 {
    assignments
        .iter()
        .enumerate()
        .map(|(i, &a)| squared_euclidean(data.row(i), &centroids[a]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of 10 points each.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let centers = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)];
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for p in 0..10 {
                let dx = (p as f64 * 0.37 + ci as f64).sin() * 0.5;
                let dy = (p as f64 * 0.71 + ci as f64).cos() * 0.5;
                rows.push(vec![cx + dx, cy + dy]);
            }
        }
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(3)).unwrap();
        let sizes = r.cluster_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 30);
        assert!(sizes.iter().all(|&s| s == 10), "sizes {sizes:?}");
        // Points within a blob share an assignment.
        for blob in 0..3 {
            let first = r.assignments[blob * 10];
            assert!(r.assignments[blob * 10..(blob + 1) * 10]
                .iter()
                .all(|&a| a == first));
        }
        assert!(r.sse < 30.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = blobs();
        let cfg = KMeansConfig::new(3).with_seed(42);
        let a = kmeans(&data, &cfg).unwrap();
        let b = kmeans(&data, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn k_equals_n_gives_zero_sse() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let r = kmeans(&data, &KMeansConfig::new(3)).unwrap();
        assert!(r.sse < 1e-12);
        let mut sorted = r.assignments.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn k_one_centroid_is_mean() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 4.0]]).unwrap();
        let r = kmeans(&data, &KMeansConfig::new(1)).unwrap();
        assert_eq!(r.centroids[0], vec![1.0, 2.0]);
    }

    #[test]
    fn weights_sum_to_one() {
        let r = kmeans(&blobs(), &KMeansConfig::new(3)).unwrap();
        let s: f64 = r.cluster_weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn representative_is_nearest_to_centroid() {
        let data = blobs();
        let r = kmeans(&data, &KMeansConfig::new(3)).unwrap();
        let ranked = r.members_by_centroid_distance(&data);
        for (c, members) in ranked.iter().enumerate() {
            assert_eq!(members.len(), 10);
            let d0 = squared_euclidean(data.row(members[0]), &r.centroids[c]);
            for &m in members {
                assert!(d0 <= squared_euclidean(data.row(m), &r.centroids[c]) + 1e-12);
            }
        }
        let reps = r.representatives(&data);
        assert!(reps.iter().all(|r| r.is_some()));
    }

    #[test]
    fn validates_inputs() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(matches!(
            kmeans(&data, &KMeansConfig::new(0)),
            Err(ClusterError::InvalidParameter(_))
        ));
        assert!(matches!(
            kmeans(&data, &KMeansConfig::new(3)),
            Err(ClusterError::TooFewPoints { points: 2, k: 3 })
        ));
        let nan = Matrix::from_rows(&[vec![f64::NAN], vec![0.0]]).unwrap();
        assert!(matches!(
            kmeans(&nan, &KMeansConfig::new(1)),
            Err(ClusterError::NonFinite(_))
        ));
    }

    #[test]
    fn duplicate_points_handled() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 5]).unwrap();
        let r = kmeans(&data, &KMeansConfig::new(2)).unwrap();
        assert!(r.sse < 1e-12);
        assert_eq!(r.assignments.len(), 5);
    }

    #[test]
    fn parallel_restarts_match_serial_exactly() {
        let data = blobs();
        for restarts in [1, 3, 8, 32] {
            let serial = kmeans(
                &data,
                &KMeansConfig::new(3)
                    .with_restarts(restarts)
                    .with_threads(Some(1)),
            )
            .unwrap();
            for threads in [Some(2), Some(4), Some(64), None] {
                let parallel = kmeans(
                    &data,
                    &KMeansConfig::new(3)
                        .with_restarts(restarts)
                        .with_threads(threads),
                )
                .unwrap();
                assert_eq!(serial, parallel, "restarts={restarts} threads={threads:?}");
            }
        }
    }

    #[test]
    fn kernel_lloyd_matches_naive_reference_exactly() {
        // The pruned kernel must be bit-identical to the naive scan on
        // every field, including through restarts and thread splits.
        let data = blobs();
        for (k, restarts, seed) in [(1, 1, 0u64), (3, 8, 7), (5, 4, 42), (10, 2, 9)] {
            let cfg = KMeansConfig::new(k).with_restarts(restarts).with_seed(seed);
            let naive = kmeans_naive(&data, &cfg).unwrap();
            for threads in [Some(1), Some(2), None] {
                let fast = kmeans(&data, &cfg.clone().with_threads(threads)).unwrap();
                assert_eq!(naive, fast, "k={k} restarts={restarts} threads={threads:?}");
            }
        }
    }

    #[test]
    fn kernel_matches_naive_through_empty_cluster_reseeds() {
        // Heavily duplicated points with k close to the number of distinct
        // values force the empty-cluster reseed path in most restarts.
        let mut rows = vec![vec![0.0, 0.0]; 12];
        rows.extend(vec![vec![1.0, 1.0]; 12]);
        rows.push(vec![50.0, 50.0]);
        let data = Matrix::from_rows(&rows).unwrap();
        for k in [3, 5, 8] {
            let cfg = KMeansConfig::new(k).with_restarts(6).with_seed(k as u64);
            assert_eq!(
                kmeans_naive(&data, &cfg).unwrap(),
                kmeans(&data, &cfg).unwrap(),
                "k={k}"
            );
        }
    }

    #[test]
    fn zero_threads_rejected() {
        let data = blobs();
        assert!(matches!(
            kmeans(&data, &KMeansConfig::new(3).with_threads(Some(0))),
            Err(ClusterError::InvalidParameter(_))
        ));
    }

    #[test]
    fn degenerate_distances_rank_without_panicking() {
        // NaN coordinates can reach the ranking helpers through
        // `from_assignments` (external assignments are not re-validated).
        // total_cmp must order them deterministically — NaN last — where
        // `partial_cmp(..).expect(..)` used to abort the process.
        let data = Matrix::from_rows(&[vec![1.0], vec![f64::NAN], vec![0.5]]).unwrap();
        let result = KMeansResult {
            centroids: vec![vec![0.0]],
            assignments: vec![0, 0, 0],
            sse: 0.0,
            iterations: 0,
        };
        let ranked = result.members_by_centroid_distance(&data);
        assert_eq!(ranked.len(), 1);
        // Finite distances (0.25 for row 2, 1.0 for row 0) rank ascending;
        // the NaN row sorts to the end.
        assert_eq!(ranked[0], vec![2, 0, 1]);
        assert_eq!(result.representatives(&data), vec![Some(2)]);
    }

    #[test]
    fn more_clusters_never_increase_sse() {
        let data = blobs();
        let mut prev = f64::INFINITY;
        for k in 1..=6 {
            let r = kmeans(&data, &KMeansConfig::new(k).with_restarts(12)).unwrap();
            assert!(
                r.sse <= prev + 1e-9,
                "k={k}: sse {} > previous {prev}",
                r.sse
            );
            prev = r.sse;
        }
    }
}
