//! Symmetric eigendecomposition entry points.
//!
//! PCA only ever needs the eigendecomposition of a covariance matrix, which
//! is symmetric positive semi-definite. [`symmetric_eigen`] routes through
//! the tridiagonalize-then-implicit-QL kernel in [`crate::kernel`]; the
//! cyclic Jacobi implementation it replaced stays in-tree as
//! [`symmetric_eigen_naive`], the differential oracle the kernel is pinned
//! against (see the exactness contract in the kernel module docs). Jacobi is
//! simple and numerically robust for this class — ideal as a reference — but
//! needs ~an order of magnitude more flops at the ~100×100 covariance sizes
//! FLARE produces.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition: `a = V diag(λ) Vᵀ`.
///
/// Eigenpairs are sorted by descending eigenvalue, the order PCA consumes
/// them in.
#[derive(Debug, Clone, PartialEq)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Matrix whose *columns* are the corresponding unit eigenvectors.
    pub eigenvectors: Matrix,
}

impl EigenDecomposition {
    /// Number of eigenpairs.
    pub fn len(&self) -> usize {
        self.eigenvalues.len()
    }

    /// `true` if there are no eigenpairs (never the case for valid input).
    pub fn is_empty(&self) -> bool {
        self.eigenvalues.is_empty()
    }

    /// The `k`-th eigenvector as an owned `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= len()`.
    pub fn eigenvector(&self, k: usize) -> Vec<f64> {
        self.eigenvectors.col(k)
    }
}

/// Maximum number of full Jacobi sweeps before declaring non-convergence.
/// Jacobi converges quadratically; well-conditioned symmetric matrices
/// finish in < 15 sweeps even at n = 500.
const MAX_SWEEPS: usize = 64;

/// Validates a symmetric-eigendecomposition input and returns its order.
///
/// Shared by every symmetric-eigen entry point so the validation order is
/// uniform: square → non-empty → finite → symmetric. In particular a 0×0
/// matrix always reports [`LinalgError::Empty`] (historically
/// `symmetric_eigen` tested symmetry first and `symmetric_eigen_top_k`
/// tested emptiness first).
pub(crate) fn validate_symmetric_input(a: &Matrix, context: &str) -> Result<usize> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(LinalgError::DimensionMismatch(format!(
            "{context}: matrix is {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    if n == 0 {
        return Err(LinalgError::Empty(format!("{context} of 0x0 matrix")));
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite(format!("{context} input")));
    }
    let sym_tol = 1e-8 * a.max_abs().max(1.0);
    if !a.is_symmetric(sym_tol) {
        return Err(LinalgError::InvalidParameter(format!(
            "{context} requires a symmetric matrix"
        )));
    }
    Ok(n)
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix.
///
/// Routes through the tridiagonalize + implicit-QL kernel
/// ([`crate::kernel::symmetric_eigen_tridiagonal`]); the cyclic Jacobi
/// reference it replaced is available as [`symmetric_eigen_naive`] and the
/// two agree to the tolerance documented in [`crate::kernel`].
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] if `a` is not square.
/// - [`LinalgError::Empty`] if `a` is 0×0.
/// - [`LinalgError::NonFinite`] if `a` contains NaN/∞.
/// - [`LinalgError::InvalidParameter`] if `a` is not symmetric
///   (tolerance `1e-8 * max_abs`).
/// - [`LinalgError::NoConvergence`] if an eigenvalue fails to settle within
///   the iteration budget (practically unreachable for symmetric input).
///
/// # Examples
///
/// ```
/// use flare_linalg::{Matrix, eigen::symmetric_eigen};
///
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
/// let e = symmetric_eigen(&a).unwrap();
/// assert!((e.eigenvalues[0] - 3.0).abs() < 1e-10);
/// assert!((e.eigenvalues[1] - 1.0).abs() < 1e-10);
/// ```
pub fn symmetric_eigen(a: &Matrix) -> Result<EigenDecomposition> {
    crate::kernel::symmetric_eigen_tridiagonal(a)
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix using
/// cyclic Jacobi rotations — the differential oracle for the kernel path.
///
/// This is the original `symmetric_eigen` implementation, kept in-tree so
/// the differential tests and the `abl16_eigen_kernels` bench can pin the
/// fast path against it (the same pattern the k-means and evaluation kernel
/// layers use). Production code should call [`symmetric_eigen`].
///
/// # Errors
///
/// Same conditions as [`symmetric_eigen`]; non-convergence reports the
/// Jacobi sweep budget.
pub fn symmetric_eigen_naive(a: &Matrix) -> Result<EigenDecomposition> {
    let n = validate_symmetric_input(a, "symmetric_eigen")?;

    let mut m = a.clone();
    let mut v = Matrix::identity(n);

    // Convergence threshold scales with the matrix magnitude so tiny
    // covariance matrices and large ones behave identically.
    let eps = 1e-12 * a.max_abs().max(1.0);

    for sweep in 0..MAX_SWEEPS {
        let off = off_diagonal_norm(&m);
        if off <= eps {
            return Ok(finalize(m, v));
        }
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= eps / (n * n) as f64 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classic Jacobi rotation: choose t = tan(θ) as the smaller
                // root so |θ| ≤ π/4, which guarantees convergence.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                apply_rotation(&mut m, p, q, c, s);
                rotate_eigenvectors(&mut v, p, q, c, s);
            }
        }
        // `sweep` only used for the error report below.
        let _ = sweep;
    }

    if off_diagonal_norm(&m) <= eps * 1e3 {
        // Accept a slightly looser tolerance rather than failing: the
        // eigenvalues are still accurate to ~1e-9 relative.
        return Ok(finalize(m, v));
    }
    Err(LinalgError::NoConvergence {
        algorithm: "cyclic Jacobi eigendecomposition",
        iterations: MAX_SWEEPS,
    })
}

/// Computes only the `k` largest eigenpairs of a symmetric PSD matrix via
/// power iteration with Hotelling deflation.
///
/// Jacobi computes the full spectrum in O(n³) per sweep; when the metric
/// space grows (temporal enrichment doubles it, §4.1; per-job columns add
/// more, §5.3) and only the leading ~18 components matter, the truncated
/// solver scales as O(k·n²·iters). Intended for PSD covariance matrices —
/// deflation assumes non-negative eigenvalues.
///
/// # Errors
///
/// - Same input validation as [`symmetric_eigen`].
/// - [`LinalgError::InvalidParameter`] if `k == 0` or `k > n`.
/// - [`LinalgError::NoConvergence`] if an eigenpair fails to settle.
pub fn symmetric_eigen_top_k(a: &Matrix, k: usize) -> Result<EigenDecomposition> {
    let n = validate_symmetric_input(a, "symmetric_eigen_top_k")?;
    if k == 0 || k > n {
        return Err(LinalgError::InvalidParameter(format!(
            "cannot extract {k} of {n} eigenpairs"
        )));
    }

    const MAX_ITERS: usize = 10_000;
    let mut deflated = a.clone();
    let mut eigenvalues = Vec::with_capacity(k);
    let mut eigenvectors = Matrix::zeros(n, k);

    for comp in 0..k {
        // Deterministic pseudo-random start, orthogonalized against the
        // found eigenvectors for robustness.
        let mut v: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761 + comp * 40503 + 1) % 1000) as f64 / 1000.0 + 0.1)
            .collect();
        normalize(&mut v);

        let mut lambda = 0.0;
        let mut converged = false;
        for _ in 0..MAX_ITERS {
            let mut next = deflated.matvec(&v)?;
            // Re-orthogonalize against previous components (fights drift).
            for j in 0..comp {
                let col = eigenvectors.col(j);
                let dot: f64 = next.iter().zip(&col).map(|(a, b)| a * b).sum();
                for (x, c) in next.iter_mut().zip(&col) {
                    *x -= dot * c;
                }
            }
            let norm = normalize(&mut next);
            let delta: f64 = next
                .iter()
                .zip(&v)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            v = next;
            lambda = norm;
            if delta < 1e-12 {
                converged = true;
                break;
            }
        }
        if !converged && lambda > 1e-9 {
            return Err(LinalgError::NoConvergence {
                algorithm: "power iteration",
                iterations: MAX_ITERS,
            });
        }
        // Sign convention matching `finalize`.
        let sign = v
            .iter()
            .cloned()
            .fold((0.0f64, 1.0f64), |(best, sgn), x| {
                if x.abs() > best {
                    (x.abs(), if x < 0.0 { -1.0 } else { 1.0 })
                } else {
                    (best, sgn)
                }
            })
            .1;
        for (i, &x) in v.iter().enumerate() {
            eigenvectors[(i, comp)] = x * sign;
        }
        eigenvalues.push(lambda);
        // Hotelling deflation: A <- A - λ v vᵀ.
        for i in 0..n {
            for j in 0..n {
                deflated[(i, j)] -= lambda * v[i] * v[j];
            }
        }
    }

    Ok(EigenDecomposition {
        eigenvalues,
        eigenvectors,
    })
}

/// Normalizes in place; returns the original L2 norm.
fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

/// Frobenius norm of the strictly upper triangle (the convergence measure).
fn off_diagonal_norm(m: &Matrix) -> f64 {
    let n = m.nrows();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            s += m[(i, j)] * m[(i, j)];
        }
    }
    s.sqrt()
}

/// Applies the two-sided rotation `Jᵀ M J` in place for the (p, q) plane.
fn apply_rotation(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.nrows();
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];

    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;

    for i in 0..n {
        if i != p && i != q {
            let aip = m[(i, p)];
            let aiq = m[(i, q)];
            m[(i, p)] = c * aip - s * aiq;
            m[(p, i)] = m[(i, p)];
            m[(i, q)] = s * aip + c * aiq;
            m[(q, i)] = m[(i, q)];
        }
    }
}

/// Accumulates the rotation into the eigenvector matrix (columns).
fn rotate_eigenvectors(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    for i in 0..v.nrows() {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

/// Sorts eigenpairs by descending eigenvalue and fixes sign conventions
/// (largest-magnitude component of each eigenvector is positive) so results
/// are deterministic across runs. `m` holds the converged (near-diagonal)
/// matrix, `v` the accumulated rotations.
fn finalize(m: Matrix, v: Matrix) -> EigenDecomposition {
    let raw: Vec<f64> = (0..m.nrows()).map(|i| m[(i, i)]).collect();
    finalize_pairs(raw, v)
}

/// Shared eigenpair post-processing: descending sort plus the
/// sign-canonicalization above. Both the Jacobi oracle and the tridiagonal
/// kernel finish through this helper, so the two paths emit identical
/// ordering and sign conventions by construction.
pub(crate) fn finalize_pairs(raw: Vec<f64>, v: Matrix) -> EigenDecomposition {
    let n = raw.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| raw[b].partial_cmp(&raw[a]).expect("finite eigenvalues"));

    let eigenvalues: Vec<f64> = idx.iter().map(|&i| raw[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in idx.iter().enumerate() {
        let col = v.col(old_col);
        // Sign convention: make the largest-|.| entry positive.
        let sign = col
            .iter()
            .cloned()
            .fold((0.0f64, 1.0f64), |(best, sgn), x| {
                if x.abs() > best {
                    (x.abs(), if x < 0.0 { -1.0 } else { 1.0 })
                } else {
                    (best, sgn)
                }
            })
            .1;
        for i in 0..n {
            eigenvectors[(i, new_col)] = col[i] * sign;
        }
    }
    EigenDecomposition {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b}");
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn two_by_two_known_eigenpairs() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_close(e.eigenvalues[0], 3.0, 1e-10);
        assert_close(e.eigenvalues[1], 1.0, 1e-10);
        // First eigenvector is (1,1)/sqrt(2) up to sign convention.
        let v0 = e.eigenvector(0);
        assert_close(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-10);
        assert_close(v0[0], v0[1], 1e-10);
    }

    #[test]
    fn reconstruction_matches_original() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5, 0.0],
            vec![1.0, 3.0, 0.2, 0.1],
            vec![0.5, 0.2, 2.0, 0.3],
            vec![0.0, 0.1, 0.3, 1.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        // V diag(λ) Vᵀ == A
        let mut lambda = Matrix::zeros(4, 4);
        for i in 0..4 {
            lambda[(i, i)] = e.eigenvalues[i];
        }
        let recon = e
            .eigenvectors
            .matmul(&lambda)
            .unwrap()
            .matmul(&e.eigenvectors.transpose())
            .unwrap();
        assert!(recon.sub(&a).unwrap().frobenius_norm() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.5],
            vec![1.0, 0.5, 3.0],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let vtv = e.eigenvectors.transpose().matmul(&e.eigenvectors).unwrap();
        assert!(vtv.sub(&Matrix::identity(3)).unwrap().frobenius_norm() < 1e-10);
    }

    #[test]
    fn trace_is_preserved() {
        let a = Matrix::from_rows(&[
            vec![1.5, 0.3, 0.7],
            vec![0.3, 2.5, 0.1],
            vec![0.7, 0.1, 0.9],
        ])
        .unwrap();
        let e = symmetric_eigen(&a).unwrap();
        let trace = 1.5 + 2.5 + 0.9;
        assert_close(e.eigenvalues.iter().sum::<f64>(), trace, 1e-10);
    }

    #[test]
    fn rejects_asymmetric_and_nonsquare() {
        let ns = Matrix::zeros(2, 3);
        assert!(symmetric_eigen(&ns).is_err());
        let asym = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen(&asym),
            Err(LinalgError::InvalidParameter(_))
        ));
    }

    #[test]
    fn rejects_non_finite() {
        let a = Matrix::from_rows(&[vec![f64::NAN, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen(&a),
            Err(LinalgError::NonFinite(_))
        ));
    }

    #[test]
    fn psd_matrix_has_nonnegative_eigenvalues() {
        // Gram matrix of random-ish vectors is PSD.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.3, 1.1, 2.2],
            vec![0.9, 0.1, 1.4],
            vec![2.0, 0.7, 0.2],
        ])
        .unwrap();
        let g = b.transpose().matmul(&b).unwrap();
        let e = symmetric_eigen(&g).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l > -1e-10));
        // Sorted descending.
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn top_k_matches_jacobi_on_psd() {
        // Gram matrix (PSD) with a clear spectrum.
        let b = Matrix::from_rows(&[
            vec![2.0, 0.5, 0.1, 0.0],
            vec![0.3, 1.5, 0.7, 0.2],
            vec![0.9, 0.1, 1.1, 0.4],
            vec![0.2, 0.8, 0.3, 1.9],
            vec![1.1, 0.2, 0.6, 0.5],
        ])
        .unwrap();
        let g = b.transpose().matmul(&b).unwrap();
        let full = symmetric_eigen(&g).unwrap();
        let top2 = symmetric_eigen_top_k(&g, 2).unwrap();
        for i in 0..2 {
            assert_close(top2.eigenvalues[i], full.eigenvalues[i], 1e-6);
            // Vectors agree up to sign (the convention fixes the sign).
            let a = top2.eigenvector(i);
            let b = full.eigenvector(i);
            let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_close(dot.abs(), 1.0, 1e-6);
        }
    }

    #[test]
    fn top_k_full_spectrum_matches() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let full = symmetric_eigen(&a).unwrap();
        let top = symmetric_eigen_top_k(&a, 2).unwrap();
        for i in 0..2 {
            assert_close(top.eigenvalues[i], full.eigenvalues[i], 1e-8);
        }
    }

    #[test]
    fn top_k_validates() {
        let a = Matrix::identity(3);
        assert!(symmetric_eigen_top_k(&a, 0).is_err());
        assert!(symmetric_eigen_top_k(&a, 4).is_err());
        assert!(symmetric_eigen_top_k(&Matrix::zeros(2, 3), 1).is_err());
        let asym = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(symmetric_eigen_top_k(&asym, 1).is_err());
    }

    #[test]
    fn top_k_handles_degenerate_zero_matrix() {
        let z = Matrix::zeros(3, 3);
        let e = symmetric_eigen_top_k(&z, 2).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| l.abs() < 1e-12));
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[vec![7.0]]).unwrap();
        let e = symmetric_eigen(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0]);
        assert_eq!(e.eigenvector(0), vec![1.0]);
    }

    #[test]
    fn zero_by_zero_reports_empty_from_every_entry_point() {
        // All entry points share `validate_symmetric_input`, so a 0×0
        // matrix uniformly reports Empty (it used to fall through to the
        // symmetry test in `symmetric_eigen`).
        let z = Matrix::zeros(0, 0);
        assert!(matches!(symmetric_eigen(&z), Err(LinalgError::Empty(_))));
        assert!(matches!(
            symmetric_eigen_naive(&z),
            Err(LinalgError::Empty(_))
        ));
        assert!(matches!(
            symmetric_eigen_top_k(&z, 1),
            Err(LinalgError::Empty(_))
        ));
    }

    #[test]
    fn naive_oracle_validates_and_solves_like_the_kernel_path() {
        assert!(symmetric_eigen_naive(&Matrix::zeros(2, 3)).is_err());
        let nan = Matrix::from_rows(&[vec![f64::NAN, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            symmetric_eigen_naive(&nan),
            Err(LinalgError::NonFinite(_))
        ));
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = symmetric_eigen_naive(&a).unwrap();
        assert_close(e.eigenvalues[0], 3.0, 1e-10);
        assert_close(e.eigenvalues[1], 1.0, 1e-10);
    }
}
