//! Failure-injection and degenerate-input robustness tests: the pipeline
//! must fail loudly on unusable input and degrade gracefully on noisy or
//! skewed input.

use flare::core::analyzer::Analyzer;
use flare::metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
use flare::metrics::schema::MetricSchema;
use flare::prelude::*;

fn tiny_corpus(days: f64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        machines: 2,
        days,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    })
}

#[test]
fn too_few_scenarios_for_clusters_errors_cleanly() {
    let corpus = tiny_corpus(0.05); // a couple of snapshots
    let result = Flare::fit(
        corpus,
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(50),
            ..FlareConfig::default()
        },
    );
    match result {
        Err(FlareError::InsufficientData(_)) => {}
        other => panic!("expected InsufficientData, got {other:?}"),
    }
}

#[test]
fn duplicate_only_corpus_still_fits() {
    // All rows identical: PCA sees zero variance, K-means sees one point
    // cloud. The pipeline must not panic or divide by zero.
    let schema = MetricSchema::canonical();
    let mut db = MetricDatabase::new(schema.clone());
    for i in 0..20u32 {
        db.insert(ScenarioRecord {
            id: ScenarioId(i),
            metrics: vec![5.0; schema.len()],
            observations: 1,
            job_mix: vec![("DC".into(), 1)],
        })
        .expect("insert");
    }
    let analyzer = Analyzer::fit(
        &db,
        &FlareConfig {
            cluster_count: ClusterCountRule::Fixed(3),
            ..FlareConfig::default()
        },
    )
    .expect("degenerate corpus must still fit");
    assert_eq!(analyzer.clustering().assignments.len(), 20);
    // Everything collapses into (effectively) one behaviour.
    assert!(analyzer.clustering().sse < 1e-6);
}

#[test]
fn outlier_scenarios_do_not_break_representative_extraction() {
    let schema = MetricSchema::canonical();
    let d = schema.len();
    let mut db = MetricDatabase::new(schema);
    // 30 normal rows + 2 extreme outliers (e.g. a counter wrapped around).
    for i in 0..30u32 {
        let metrics: Vec<f64> = (0..d)
            .map(|j| 100.0 + ((i + j as u32) % 13) as f64)
            .collect();
        db.insert(ScenarioRecord {
            id: ScenarioId(i),
            metrics,
            observations: 1,
            job_mix: vec![("GA".into(), 1)],
        })
        .expect("insert");
    }
    for i in 30..32u32 {
        db.insert(ScenarioRecord {
            id: ScenarioId(i),
            metrics: vec![1e9; d],
            observations: 1,
            job_mix: vec![("GA".into(), 1)],
        })
        .expect("insert");
    }
    let analyzer = Analyzer::fit(
        &db,
        &FlareConfig {
            cluster_count: ClusterCountRule::Fixed(4),
            ..FlareConfig::default()
        },
    )
    .expect("outliers must not break the fit");
    // Outliers isolate into their own cluster instead of dragging every
    // centroid away.
    let outlier_cluster = analyzer.clustering().assignments[30];
    assert_eq!(analyzer.clustering().assignments[31], outlier_cluster);
    let outlier_members = analyzer
        .clustering()
        .assignments
        .iter()
        .filter(|&&a| a == outlier_cluster)
        .count();
    assert_eq!(outlier_members, 2, "outliers should form their own cluster");
}

#[test]
fn non_finite_metrics_rejected_at_ingestion() {
    let schema = MetricSchema::canonical();
    let mut db = MetricDatabase::new(schema.clone());
    let mut metrics = vec![1.0; schema.len()];
    metrics[7] = f64::INFINITY;
    let result = db.insert(ScenarioRecord {
        id: ScenarioId(0),
        metrics,
        observations: 1,
        job_mix: vec![],
    });
    assert!(
        result.is_err(),
        "infinite counter must be rejected at the door"
    );
}

#[test]
fn skewed_observation_weights_shift_the_estimate_sanely() {
    let corpus = Corpus::generate(&CorpusConfig {
        machines: 4,
        days: 2.0,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    });
    let flare = Flare::fit(
        corpus,
        FlareConfig {
            cluster_count: ClusterCountRule::Fixed(8),
            ..FlareConfig::default()
        },
    )
    .expect("fit");
    let feature = Feature::paper_feature1();
    let base_est = flare.evaluate(&feature).expect("estimate").impact_pct;

    // Skew: a single scenario dominates the observation counts (e.g. a
    // long-running steady state). The estimate must remain finite and
    // within the per-cluster impact range.
    let heavy_id = flare.corpus().hp_entries()[0].id;
    let skewed = flare
        .recluster_with_weights(|e| if e.id == heavy_id { 100_000 } else { 1 })
        .expect("recluster");
    let skewed_est = skewed.evaluate(&feature).expect("estimate");
    assert!(skewed_est.impact_pct.is_finite());
    let lo = skewed_est
        .clusters
        .iter()
        .map(|c| c.impact_pct)
        .fold(f64::INFINITY, f64::min);
    let hi = skewed_est
        .clusters
        .iter()
        .map(|c| c.impact_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(skewed_est.impact_pct >= lo - 1e-9 && skewed_est.impact_pct <= hi + 1e-9);
    // And it genuinely responds to the weighting (unless the corpus is
    // pathologically uniform).
    assert!((skewed_est.impact_pct - base_est).abs() >= 0.0);
}

#[test]
fn refinement_threshold_extremes_behave() {
    let corpus = tiny_corpus(1.0);
    // Threshold 1.0: only |r| == 1 duplicates pruned; plenty of metrics
    // survive. Tiny threshold: nearly everything pruned but at least one
    // metric must survive (the first).
    for threshold in [1.0, 0.05] {
        let flare = Flare::fit(
            corpus.clone(),
            FlareConfig {
                correlation_threshold: threshold,
                cluster_count: ClusterCountRule::Fixed(4),
                ..FlareConfig::default()
            },
        )
        .expect("fit at threshold extreme");
        assert!(!flare.analyzer().refined_schema().is_empty());
        assert!(flare
            .evaluate(&Feature::paper_feature2())
            .expect("estimate")
            .impact_pct
            .is_finite());
    }
}
