//! Markdown report generation: the artifact a datacenter engineer shares
//! after running FLARE — the extracted representatives with their
//! interpretation, and (optionally) feature evaluation results.

use crate::estimate::AllJobEstimate;
use crate::interpret::{distinguishing_pcs, interpret_pcs};
use crate::pipeline::Flare;
use flare_sim::feature::Feature;
use std::fmt::Write as _;

/// Renders a fitted FLARE instance as a self-contained markdown report.
///
/// Sections: corpus summary, pipeline stages (refinement / PCA /
/// clustering), the representative-scenario table with weights and job
/// mixes, labeled principal components, and one section per evaluated
/// feature.
pub fn markdown_report(flare: &Flare, evaluations: &[(Feature, AllJobEstimate)]) -> String {
    let mut out = String::new();
    let analyzer = flare.analyzer();

    let _ = writeln!(out, "# FLARE report\n");
    let _ = writeln!(out, "## Corpus\n");
    let _ = writeln!(
        out,
        "- distinct job-colocation scenarios: **{}** ({} with HP jobs)",
        flare.corpus().len(),
        flare.corpus().hp_entries().len()
    );
    let _ = writeln!(
        out,
        "- machine: {} ({} vCPUs, {} MB LLC)",
        flare.baseline().shape.model,
        flare.baseline().schedulable_vcpus(),
        flare.baseline().total_llc_mb()
    );

    let _ = writeln!(out, "\n## Pipeline\n");
    let _ = writeln!(
        out,
        "- refinement: {} raw metrics -> {} (|r| >= {} pruned)",
        flare.database().schema().len(),
        analyzer.refined_schema().len(),
        flare.config().correlation_threshold
    );
    let _ = writeln!(
        out,
        "- PCA: {} components explain {:.0}% of variance",
        analyzer.n_pcs(),
        flare.config().variance_threshold * 100.0
    );
    let _ = writeln!(
        out,
        "- clustering: {} groups -> {} representative scenarios",
        analyzer.n_clusters(),
        flare.n_representatives()
    );
    if let Some(spill) = analyzer.spill_stats() {
        let _ = writeln!(
            out,
            "- featurize spill: {:.1}% hit rate ({} hits / {} faults, {} prefetched, {} evictions)",
            spill.hit_rate() * 100.0,
            spill.hits,
            spill.faults,
            spill.prefetch_hits,
            spill.evictions
        );
    }

    let _ = writeln!(out, "\n## Representative scenarios\n");
    let _ = writeln!(
        out,
        "| cluster | weight | representative | job mix | distinguishing PCs |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|");
    let weights = analyzer.cluster_weights(flare.config().weight_by_observations);
    for (c, &weight) in weights.iter().enumerate() {
        if let Some(id) = analyzer.representative(c) {
            let entry = flare.corpus().get(id).expect("rep in corpus");
            let mix: Vec<String> = entry
                .scenario
                .iter()
                .map(|(j, n)| format!("{}×{n}", j.abbrev()))
                .collect();
            let pcs: Vec<String> = distinguishing_pcs(analyzer, c, 2)
                .into_iter()
                .map(|(pc, v)| format!("PC{pc} {v:+.1}σ"))
                .collect();
            let _ = writeln!(
                out,
                "| {c} | {:.1}% | {id} | {} | {} |",
                weight * 100.0,
                mix.join(", "),
                pcs.join(", ")
            );
        }
    }

    let _ = writeln!(out, "\n## High-level metrics (principal components)\n");
    for pc in interpret_pcs(analyzer, 4) {
        let _ = writeln!(
            out,
            "- **PC{}** ({:.1}% of variance): {}",
            pc.pc,
            pc.explained_variance * 100.0,
            pc.label
        );
    }

    if !evaluations.is_empty() {
        let _ = writeln!(out, "\n## Feature evaluations\n");
        for (feature, estimate) in evaluations {
            let _ = writeln!(out, "### {}\n", feature.label());
            let _ = writeln!(
                out,
                "estimated fleet-wide MIPS reduction: **{:.2}%** ({} replays)\n",
                estimate.impact_pct, estimate.replay_count
            );
            let _ = writeln!(out, "| cluster | weight | impact |");
            let _ = writeln!(out, "|---|---|---|");
            for ci in &estimate.clusters {
                let _ = writeln!(
                    out,
                    "| {} | {:.1}% | {:.2}% |",
                    ci.cluster,
                    ci.weight * 100.0,
                    ci.impact_pct
                );
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterCountRule, FlareConfig};
    use flare_sim::datacenter::{Corpus, CorpusConfig};

    fn small_flare() -> Flare {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        Flare::fit(
            Corpus::generate(&cfg),
            FlareConfig {
                cluster_count: ClusterCountRule::Fixed(6),
                ..FlareConfig::default()
            },
        )
        .expect("fit")
    }

    #[test]
    fn report_contains_all_sections() {
        let flare = small_flare();
        let feature = Feature::paper_feature1();
        let estimate = flare.evaluate(&feature).expect("estimate");
        let report = markdown_report(&flare, &[(feature, estimate)]);
        for section in [
            "# FLARE report",
            "## Corpus",
            "## Pipeline",
            "## Representative scenarios",
            "## High-level metrics",
            "## Feature evaluations",
            "### Feature1",
        ] {
            assert!(report.contains(section), "missing `{section}`");
        }
        // One table row per cluster.
        assert!(report.matches("| 0 |").count() >= 1);
    }

    #[test]
    fn report_without_evaluations_omits_section() {
        let flare = small_flare();
        let report = markdown_report(&flare, &[]);
        assert!(!report.contains("## Feature evaluations"));
        assert!(report.contains("## Representative scenarios"));
        // In-memory fit: no spill counters to surface.
        assert!(!report.contains("featurize spill"));
    }

    #[test]
    fn report_surfaces_spill_counters_when_out_of_core() {
        let cfg = CorpusConfig {
            machines: 4,
            days: 2.0,
            tick_minutes: 15.0,
            ..CorpusConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("flare-report-spill-{}", std::process::id()));
        let mut config = FlareConfig {
            cluster_count: ClusterCountRule::Fixed(6),
            ..FlareConfig::default()
        };
        config.scale.shard_rows = 16;
        config.scale.spill.enabled = true;
        config.scale.spill.dir = Some(dir.clone());
        config.scale.spill.max_resident_shards = 1;
        let flare = Flare::fit(Corpus::generate(&cfg), config).expect("fit");
        let report = markdown_report(&flare, &[]);
        assert!(report.contains("featurize spill"), "{report}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
