//! Criterion benchmarks of the end-to-end FLARE pipeline stages: corpus
//! collection, scenario evaluation, metric synthesis, fitting, and feature
//! estimation. These are the wall-clock costs a user pays per evaluation —
//! compare against replaying 1 000+ scenarios on physical hardware.

use criterion::{criterion_group, criterion_main, Criterion};
use flare_core::{Flare, FlareConfig};
use flare_sim::datacenter::{Corpus, CorpusConfig};
use flare_sim::feature::Feature;
use flare_sim::interference::evaluate;
use flare_sim::profiler::synthesize;
use flare_sim::scenario::Scenario;
use flare_workloads::job::JobName;

fn small_corpus_config() -> CorpusConfig {
    CorpusConfig {
        machines: 4,
        days: 2.0,
        tick_minutes: 15.0,
        ..CorpusConfig::default()
    }
}

fn bench_corpus(c: &mut Criterion) {
    let cfg = small_corpus_config();
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("generate_4machines_2days", |b| {
        b.iter(|| Corpus::generate(&cfg))
    });
    group.finish();
}

fn bench_interference(c: &mut Criterion) {
    let config = CorpusConfig::default().machine_config;
    let scenario = Scenario::from_counts([
        (JobName::DataCaching, 2),
        (JobName::GraphAnalytics, 3),
        (JobName::WebSearch, 2),
        (JobName::Mcf, 3),
        (JobName::Libquantum, 2),
    ]);
    c.bench_function("interference_evaluate_12_containers", |b| {
        b.iter(|| evaluate(&scenario, &config))
    });
    let perf = evaluate(&scenario, &config);
    c.bench_function("profiler_synthesize_106_metrics", |b| {
        b.iter(|| synthesize(&scenario, &perf, &config, 42))
    });
}

fn bench_flare(c: &mut Criterion) {
    let cfg = small_corpus_config();
    let corpus = Corpus::generate(&cfg);
    let flare_cfg = FlareConfig {
        cluster_count: flare_core::ClusterCountRule::Fixed(10),
        ..FlareConfig::default()
    };
    let mut group = c.benchmark_group("flare");
    group.sample_size(10);
    group.bench_function("fit_small_corpus", |b| {
        b.iter(|| Flare::fit(corpus.clone(), flare_cfg.clone()).expect("fit"))
    });
    // The `threads` knob changes wall-clock only — results are
    // byte-identical, so these two benches measure the same computation.
    for (name, threads) in [("fit_1_thread", Some(1)), ("fit_4_threads", Some(4))] {
        let threaded_cfg = FlareConfig {
            threads,
            ..flare_cfg.clone()
        };
        group.bench_function(name, |b| {
            b.iter(|| Flare::fit(corpus.clone(), threaded_cfg.clone()).expect("fit"))
        });
    }
    let flare = Flare::fit(corpus, flare_cfg).expect("fit");
    let feature = Feature::paper_feature1();
    group.bench_function("evaluate_feature_10_representatives", |b| {
        b.iter(|| flare.evaluate(&feature).expect("estimate"))
    });
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    use flare_baselines::fulldc::{full_datacenter_impact, full_datacenter_impact_parallel};
    use flare_core::replayer::{ProxyTestbed, SimTestbed};

    let cfg = small_corpus_config();
    let corpus = Corpus::generate(&cfg);
    let baseline = cfg.machine_config.clone();
    let feature_cfg = Feature::paper_feature1().apply(&baseline);

    let mut group = c.benchmark_group("fulldc");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| full_datacenter_impact(&corpus, &SimTestbed, &baseline, &feature_cfg, true))
    });
    group.bench_function("parallel_4_threads", |b| {
        b.iter(|| {
            full_datacenter_impact_parallel(&corpus, &SimTestbed, &baseline, &feature_cfg, true, 4)
        })
    });
    group.finish();

    let proxy = ProxyTestbed::calibrated();
    let scenario = Scenario::from_counts([
        (JobName::DataCaching, 3),
        (JobName::GraphAnalytics, 3),
        (JobName::Mcf, 3),
    ]);
    c.bench_function("proxy_replay_one_scenario", |b| {
        b.iter(|| flare_core::replayer::replay_impact(&proxy, &scenario, &baseline, &feature_cfg))
    });
}

fn bench_enriched_profiler(c: &mut Criterion) {
    let config = CorpusConfig::default().machine_config;
    let scenario = Scenario::from_counts([
        (JobName::WebSearch, 3),
        (JobName::InMemoryAnalytics, 3),
        (JobName::Libquantum, 3),
    ]);
    c.bench_function("profiler_synthesize_enriched_8_phases", |b| {
        b.iter(|| flare_sim::profiler::synthesize_enriched(&scenario, &config, 8, 42))
    });
}

fn bench_hierarchical(c: &mut Criterion) {
    use flare_cluster::hierarchical::{agglomerative, Linkage};
    let cfg = small_corpus_config();
    let corpus = Corpus::generate(&cfg);
    let db = corpus.to_metric_database(&cfg.machine_config);
    let flare_cfg = FlareConfig::default();
    let analyzer = flare_core::analyzer::Analyzer::fit(&db, &flare_cfg).expect("fit");
    let projected = analyzer.projected().coalesced().clone();
    let mut group = c.benchmark_group("hierarchical");
    group.sample_size(10);
    group.bench_function("ward_dendrogram_corpus", |b| {
        b.iter(|| agglomerative(&projected, Linkage::Ward).expect("dendrogram"))
    });
    group.finish();
}

criterion_group!(
    pipeline,
    bench_corpus,
    bench_interference,
    bench_flare,
    bench_baselines,
    bench_enriched_profiler,
    bench_hierarchical
);
criterion_main!(pipeline);
