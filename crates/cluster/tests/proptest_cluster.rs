//! Property-based tests for the clustering substrate.

use flare_cluster::distance::{nearest_centroid, norm};
use flare_cluster::hierarchical::{agglomerative, Linkage};
use flare_cluster::kernel::{assign_exact_pruned, CentroidBuffer, PairwiseDistances};
use flare_cluster::kmeans::{compute_sse, kmeans, kmeans_naive, KMeansConfig, KMeansResult};
use flare_cluster::minibatch::{kmeans_tiered, MiniBatchConfig};
use flare_cluster::quality::{silhouette_score, silhouette_score_cached, sse};
use flare_linalg::Matrix;
use proptest::prelude::*;

fn points(n: usize, d: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, d), n..=n)
        .prop_map(|rows| Matrix::from_rows(&rows).expect("rectangular"))
}

/// Points whose coordinates come from a tiny integer grid: duplicates and
/// exact distance ties are common, and with a large `k` most restarts hit
/// the empty-cluster reseed path.
fn gridded_points(n: usize, d: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(
        prop::collection::vec((0i8..4).prop_map(f64::from), d),
        n..=n,
    )
    .prop_map(|rows| Matrix::from_rows(&rows).expect("rectangular"))
}

/// Every output field of a [`KMeansResult`], bit-exact: `f64`s as raw bit
/// patterns, so `-0.0` vs `0.0` or any ulp drift fails the comparison.
fn result_bits(r: &KMeansResult) -> (Vec<Vec<u64>>, Vec<usize>, u64, usize) {
    (
        r.centroids
            .iter()
            .map(|c| c.iter().map(|v| v.to_bits()).collect())
            .collect(),
        r.assignments.clone(),
        r.sse.to_bits(),
        r.iterations,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_assignments_in_range(data in points(20, 3), k in 1usize..6) {
        let r = kmeans(&data, &KMeansConfig::new(k)).unwrap();
        prop_assert_eq!(r.assignments.len(), 20);
        prop_assert!(r.assignments.iter().all(|&a| a < k));
        prop_assert_eq!(r.centroids.len(), k);
    }

    #[test]
    fn kmeans_sse_matches_reported(data in points(15, 2), k in 1usize..5) {
        let r = kmeans(&data, &KMeansConfig::new(k)).unwrap();
        let recomputed = compute_sse(&data, &r.centroids, &r.assignments);
        prop_assert!((recomputed - r.sse).abs() < 1e-9);
        let via_quality = sse(&data, &r.centroids, &r.assignments).unwrap();
        prop_assert!((via_quality - r.sse).abs() < 1e-9);
    }

    #[test]
    fn kmeans_each_point_assigned_to_nearest_centroid(data in points(12, 2)) {
        let r = kmeans(&data, &KMeansConfig::new(3)).unwrap();
        for i in 0..12 {
            let assigned = r.assignments[i];
            let d_assigned = flare_cluster::distance::squared_euclidean(
                data.row(i), &r.centroids[assigned]);
            for c in &r.centroids {
                let d = flare_cluster::distance::squared_euclidean(data.row(i), c);
                prop_assert!(d_assigned <= d + 1e-9);
            }
        }
    }

    #[test]
    fn kmeans_weights_partition_unity(data in points(18, 3), k in 1usize..6) {
        let r = kmeans(&data, &KMeansConfig::new(k)).unwrap();
        let total: f64 = r.cluster_weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kmeans_deterministic(data in points(10, 2), seed in 0u64..1000) {
        let cfg = KMeansConfig::new(3).with_seed(seed);
        let a = kmeans(&data, &cfg).unwrap();
        let b = kmeans(&data, &cfg).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn silhouette_bounded(data in points(10, 2)) {
        let r = kmeans(&data, &KMeansConfig::new(3)).unwrap();
        // Degenerate draws can collapse to <2 populated clusters; skip those.
        let populated = r.cluster_sizes().iter().filter(|&&s| s > 0).count();
        prop_assume!(populated >= 2);
        let s = silhouette_score(&data, &r.assignments, 3).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
    }

    #[test]
    fn dendrogram_cut_is_consistent_partition(data in points(12, 2), k in 1usize..12) {
        let d = agglomerative(&data, Linkage::Ward).unwrap();
        let labels = d.cut(k).unwrap();
        prop_assert_eq!(labels.len(), 12);
        let mut distinct = labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(distinct.len(), k);
        // Labels are dense 0..k.
        prop_assert!(labels.iter().all(|&l| l < k));
    }

    #[test]
    fn kernel_kmeans_byte_identical_to_naive(
        data in points(24, 3),
        k in 1usize..7,
        seed in 0u64..500,
        restarts in 1usize..5,
        threads in prop::option::of(1usize..5),
    ) {
        // The tentpole contract: the pruned/flat/parallel kernel path is
        // indistinguishable from the naive reference on every output
        // field, at the bit level, for arbitrary data and any thread knob.
        let cfg = KMeansConfig::new(k).with_seed(seed).with_restarts(restarts);
        let naive = kmeans_naive(&data, &cfg).unwrap();
        let fast = kmeans(&data, &cfg.with_threads(threads)).unwrap();
        prop_assert_eq!(result_bits(&naive), result_bits(&fast));
    }

    #[test]
    fn kernel_matches_naive_on_degenerate_grids(
        data in gridded_points(20, 2),
        k in 2usize..9,
        seed in 0u64..200,
    ) {
        // Gridded coordinates produce duplicate points, exact distance
        // ties (lowest-index tie-break must agree), and empty-cluster
        // reseeds (last-max argmax must agree).
        let cfg = KMeansConfig::new(k).with_seed(seed).with_restarts(4);
        let naive = kmeans_naive(&data, &cfg).unwrap();
        let fast = kmeans(&data, &cfg).unwrap();
        prop_assert_eq!(result_bits(&naive), result_bits(&fast));
    }

    #[test]
    fn pruned_assignment_matches_full_scan(
        data in points(16, 3),
        cents in points(5, 3),
        hint in 0usize..5,
    ) {
        let buf = CentroidBuffer::from_rows(
            &(0..5).map(|c| cents.row(c).to_vec()).collect::<Vec<_>>());
        let legacy = buf.to_rows();
        let mut norms = vec![0.0; 5];
        buf.norms_into(&mut norms);
        for i in 0..16 {
            let p = data.row(i);
            let (ni, nd) = nearest_centroid(p, &legacy).unwrap();
            let (pi, pd) = assign_exact_pruned(p, norm(p), &buf, &norms, hint);
            prop_assert_eq!(ni, pi);
            prop_assert_eq!(nd.to_bits(), pd.to_bits());
        }
    }

    #[test]
    fn cached_silhouette_matches_uncached_bits(
        data in points(14, 2),
        k in 2usize..5,
        threads in prop::option::of(1usize..4),
    ) {
        let r = kmeans(&data, &KMeansConfig::new(k)).unwrap();
        let populated = r.cluster_sizes().iter().filter(|&&s| s > 0).count();
        prop_assume!(populated >= 2);
        let uncached = silhouette_score(&data, &r.assignments, k).unwrap();
        let dists = PairwiseDistances::compute(&data, threads);
        let cached = silhouette_score_cached(&dists, &r.assignments, k).unwrap();
        prop_assert_eq!(uncached.to_bits(), cached.to_bits());
    }

    #[test]
    fn tiered_entry_point_is_bit_exact_below_the_threshold(
        data in points(24, 3),
        k in 1usize..7,
        seed in 0u64..500,
        threshold in 24usize..50_000,
        batch_size in 1usize..64,
    ) {
        // The scale-tier routing contract: at or below the threshold the
        // public tiered entry point IS the exact path — same RNG stream,
        // bit-identical on every output field — for any tier settings.
        let cfg = KMeansConfig::new(k).with_seed(seed);
        let tier = MiniBatchConfig::default()
            .with_threshold(threshold)
            .with_batch_size(batch_size);
        let exact = kmeans(&data, &cfg).unwrap();
        let tiered = kmeans_tiered(&data, &cfg, &tier).unwrap();
        prop_assert_eq!(result_bits(&exact), result_bits(&tiered));
    }

    #[test]
    fn dendrogram_cuts_are_nested(data in points(10, 2)) {
        // A refinement property: merging from k+1 to k only fuses clusters,
        // never splits them — any pair together at k+1 stays together at k.
        let d = agglomerative(&data, Linkage::Average).unwrap();
        for k in 2..=9usize {
            let coarse = d.cut(k - 1).unwrap();
            let fine = d.cut(k).unwrap();
            for i in 0..10 {
                for j in 0..10 {
                    if fine[i] == fine[j] {
                        prop_assert_eq!(coarse[i], coarse[j]);
                    }
                }
            }
        }
    }
}
