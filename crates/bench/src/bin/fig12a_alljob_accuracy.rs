//! Fig. 12a: the comprehensive (all HP jobs) impact — full datacenter
//! ground truth vs 1 000-trial random sampling vs FLARE, per feature.

use flare_baselines::fulldc::full_datacenter_impact;
use flare_baselines::sampling::{sampling_distribution, SamplingConfig};
use flare_bench::{banner, ExperimentContext};
use flare_core::replayer::SimTestbed;
use flare_sim::feature::Feature;

fn main() {
    banner(
        "All-HP-job impact: datacenter vs sampling vs FLARE",
        "Fig. 12a",
    );
    let ctx = ExperimentContext::standard();
    let n_reps = ctx.flare.n_representatives();
    println!(
        "\ncorpus: {} scenarios; FLARE replays {} representatives; sampling uses {} scenarios x 1000 trials",
        ctx.corpus.len(),
        n_reps,
        n_reps
    );

    println!(
        "\n  {:<22} {:>9} {:>9} {:>8} | sampling distribution (1000 trials)",
        "feature", "truth %", "FLARE %", "err pp"
    );
    println!(
        "  {:<22} {:>9} {:>9} {:>8} | {:>7} {:>7} {:>7} {:>7} {:>7}",
        "", "", "", "", "p2.5", "p25", "median", "p75", "p97.5"
    );
    for feature in Feature::paper_features() {
        let fc = feature.apply(&ctx.baseline);
        let truth = full_datacenter_impact(&ctx.corpus, &SimTestbed, &ctx.baseline, &fc, true);
        let flare_est = ctx.flare.evaluate(&feature).expect("estimate");
        let dist = sampling_distribution(
            &ctx.corpus,
            &SimTestbed,
            &ctx.baseline,
            &fc,
            &SamplingConfig {
                n_samples: n_reps,
                trials: 1000,
                ..SamplingConfig::default()
            },
        )
        .expect("sampling population");
        println!(
            "  {:<22} {:>9.2} {:>9.2} {:>8.2} | {:>7.2} {:>7.2} {:>7.2} {:>7.2} {:>7.2}",
            feature.label(),
            truth.impact_pct,
            flare_est.impact_pct,
            (flare_est.impact_pct - truth.impact_pct).abs(),
            dist.summary.p2_5,
            dist.summary.p25,
            dist.summary.median,
            dist.summary.p75,
            dist.summary.p97_5,
        );
        println!(
            "  {:<22} sampling max error {:.2}pp; expected max (97.5pct) {:.2}pp",
            "",
            dist.max_abs_error(truth.impact_pct),
            dist.expected_max_error(truth.impact_pct)
        );
    }
    println!("\npaper's claim: FLARE errors <1pp; sampling errors up to ~4pp at equal cost.");
}
