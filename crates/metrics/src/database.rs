//! The performance & resource database the Profiler writes into (§4.2).
//!
//! The paper records per-scenario average metrics, the commands and
//! configurations of running jobs, in "our relational database". The
//! equivalent here is an in-memory columnar table: scenario ids, a sharded
//! scenario × metric [`ShardedMatrix`], observation weights, and job mixes
//! are stored as parallel arrays sorted by scenario id. Rows are handed out
//! as lightweight [`ScenarioRow`] views and [`MetricDatabase::to_matrix`]
//! is a borrow of the primary representation, so the Analyzer's
//! PCA/clustering hot path never re-materializes the data.
//! [`ScenarioRecord`] remains the owned exchange type for insertion and
//! the (unchanged) JSON wire format.
//!
//! ## Sharding
//!
//! The data plane is stored in row shards of at most
//! [`MetricDatabase::shard_rows`] rows each (default
//! [`DEFAULT_SHARD_ROWS`]), so a 10⁵–10⁶-scenario database grows one
//! bounded block at a time instead of reallocating (and memmoving) one
//! giant matrix per insert. The shard layout is a storage detail: row
//! contents, row order, the wire format, and every query are identical to
//! the unsharded representation for any shard size — held by the proptests
//! below.

use crate::error::{MetricsError, Result};
use crate::schema::MetricSchema;
use flare_linalg::{Matrix, ShardedMatrix};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;

/// Default maximum rows per shard of the metric data plane. At the
/// canonical ~100-metric schema this bounds a shard to ~6.5 MiB, while
/// every paper-scale database (hundreds of scenarios) stays single-shard —
/// and therefore byte-for-byte identical to the pre-sharding layout.
pub const DEFAULT_SHARD_ROWS: usize = 8192;

/// Opaque identifier of a job-colocation scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ScenarioId(pub u32);

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario#{:04}", self.0)
    }
}

/// Instance count of `job` in a `(job_name, instance_count)` mix (0 if
/// absent).
fn instances_in(job_mix: &[(String, u32)], job: &str) -> u32 {
    job_mix
        .iter()
        .find(|(name, _)| name == job)
        .map(|&(_, n)| n)
        .unwrap_or(0)
}

/// One row of the metric database as an owned value: a scenario's averaged
/// raw metrics plus the bookkeeping FLARE's Replayer needs to reconstruct
/// it. This is the exchange type the Profiler produces and the JSON wire
/// format stores; inside the database the same data lives in columnar
/// arrays and is viewed through [`ScenarioRow`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioRecord {
    /// The scenario this row describes.
    pub id: ScenarioId,
    /// Raw metric values, aligned with the database's [`MetricSchema`].
    pub metrics: Vec<f64>,
    /// How many machine-intervals exhibited this scenario — the
    /// observation weight used when scenario populations are aggregated.
    pub observations: u32,
    /// The job mix as `(job_name, instance_count)` pairs — the "recorded
    /// commands and options" the Replayer re-executes (§4.5).
    pub job_mix: Vec<(String, u32)>,
}

impl ScenarioRecord {
    /// Instance count of `job` in this scenario (0 if absent).
    pub fn instances_of(&self, job: &str) -> u32 {
        instances_in(&self.job_mix, job)
    }

    /// `true` if this scenario runs at least one instance of `job`.
    pub fn has_job(&self, job: &str) -> bool {
        self.instances_of(job) > 0
    }
}

/// A borrowed view of one database row. Cheap to copy (three pointers and
/// two words); the metric slice aliases the database's backing matrix
/// directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioRow<'a> {
    /// The scenario this row describes.
    pub id: ScenarioId,
    /// Raw metric values, a borrow of the backing matrix row.
    pub metrics: &'a [f64],
    /// Observation weight of this scenario.
    pub observations: u32,
    /// The job mix as `(job_name, instance_count)` pairs.
    pub job_mix: &'a [(String, u32)],
}

impl ScenarioRow<'_> {
    /// Instance count of `job` in this scenario (0 if absent).
    pub fn instances_of(&self, job: &str) -> u32 {
        instances_in(self.job_mix, job)
    }

    /// `true` if this scenario runs at least one instance of `job`.
    pub fn has_job(&self, job: &str) -> bool {
        self.instances_of(job) > 0
    }

    /// Copies the view into an owned [`ScenarioRecord`].
    pub fn to_record(&self) -> ScenarioRecord {
        ScenarioRecord {
            id: self.id,
            metrics: self.metrics.to_vec(),
            observations: self.observations,
            job_mix: self.job_mix.to_vec(),
        }
    }
}

/// Why the validating ingest path refused a record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// Metric vector length did not match the schema.
    SchemaMismatch {
        /// Expected number of metrics (schema length).
        expected: usize,
        /// Observed vector length.
        actual: usize,
    },
    /// The scenario id was already stored (duplicated / clock-skewed
    /// telemetry record).
    Duplicate,
    /// The record carried zero observation weight.
    ZeroObservations,
    /// Too many metrics were non-finite to trust the record at all.
    TooManyMissing {
        /// Non-finite metric count in the record.
        missing: usize,
        /// Maximum tolerated by the [`IngestPolicy`].
        allowed: usize,
    },
}

impl QuarantineReason {
    /// The typed error this quarantine corresponds to, for callers that
    /// want to escalate a quarantined record into a hard failure.
    pub fn to_error(&self, id: ScenarioId) -> MetricsError {
        match *self {
            QuarantineReason::SchemaMismatch { expected, actual } => {
                MetricsError::SchemaMismatch { expected, actual }
            }
            QuarantineReason::Duplicate => MetricsError::DuplicateScenario(id.0),
            QuarantineReason::ZeroObservations => {
                MetricsError::InvalidParameter(format!("{id}: zero observations"))
            }
            QuarantineReason::TooManyMissing { missing, allowed } => {
                MetricsError::InvalidParameter(format!(
                    "{id}: {missing} missing metrics exceeds the {allowed} allowed"
                ))
            }
        }
    }
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::SchemaMismatch { expected, actual } => {
                write!(f, "schema mismatch ({actual} metrics, expected {expected})")
            }
            QuarantineReason::Duplicate => write!(f, "duplicate scenario id"),
            QuarantineReason::ZeroObservations => write!(f, "zero observations"),
            QuarantineReason::TooManyMissing { missing, allowed } => {
                write!(f, "{missing} missing metrics (allowed {allowed})")
            }
        }
    }
}

/// Tolerance knobs for [`MetricDatabase::ingest`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestPolicy {
    /// Largest fraction of a record's metrics that may be non-finite for
    /// the record to be accepted (with NaN missing-sample markers) rather
    /// than quarantined. Clamped to `[0, 1]`.
    pub max_missing_fraction: f64,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        IngestPolicy {
            max_missing_fraction: 0.5,
        }
    }
}

/// Per-batch accounting of what [`MetricDatabase::ingest`] did: how many
/// records were stored, how many missing-sample markers they carried, and
/// exactly which records were quarantined and why. Nothing is dropped
/// silently.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IngestReport {
    /// Records accepted into the database.
    pub accepted: usize,
    /// NaN missing-sample markers across the accepted records.
    pub missing_cells: usize,
    /// Refused records with their reasons, in arrival order.
    pub quarantined: Vec<(ScenarioId, QuarantineReason)>,
}

impl IngestReport {
    /// Number of records refused.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.len()
    }

    /// `true` if every record was accepted with no missing samples.
    pub fn is_clean(&self) -> bool {
        self.missing_cells == 0 && self.quarantined.is_empty()
    }
}

/// In-memory metric database: schema + columnar scenario rows.
///
/// The primary representation is a sharded scenario × metric
/// [`ShardedMatrix`] with parallel id / observation / job-mix arrays, all
/// sorted by ascending scenario id. [`MetricDatabase::to_matrix`]
/// therefore borrows rather than copies, and row lookups return
/// [`ScenarioRow`] views. Shard size is a layout knob
/// ([`MetricDatabase::with_shard_rows`]) that never changes contents,
/// query results, or the wire format.
///
/// # Examples
///
/// ```
/// use flare_metrics::database::{MetricDatabase, ScenarioId, ScenarioRecord};
/// use flare_metrics::schema::MetricSchema;
///
/// let schema = MetricSchema::canonical();
/// let mut db = MetricDatabase::new(schema.clone());
/// db.insert(ScenarioRecord {
///     id: ScenarioId(0),
///     metrics: vec![1.0; schema.len()],
///     observations: 3,
///     job_mix: vec![("memcached".into(), 2)],
/// })?;
/// assert_eq!(db.len(), 1);
/// assert_eq!(db.get(ScenarioId(0)).unwrap().metrics[0], 1.0);
/// # Ok::<(), flare_metrics::MetricsError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(into = "DbWire", try_from = "DbWire")]
pub struct MetricDatabase {
    schema: MetricSchema,
    /// Scenario ids, ascending; row `i` of `data` belongs to `ids[i]`.
    ids: Vec<ScenarioId>,
    /// The scenario × metric data plane (one logical row per scenario),
    /// stored in bounded row shards.
    data: ShardedMatrix,
    observations: Vec<u32>,
    job_mixes: Vec<Vec<(String, u32)>>,
}

impl MetricDatabase {
    /// Creates an empty database over `schema` with the default shard size
    /// ([`DEFAULT_SHARD_ROWS`]).
    pub fn new(schema: MetricSchema) -> Self {
        Self::with_shard_rows(schema, DEFAULT_SHARD_ROWS)
    }

    /// Creates an empty database over `schema` whose data plane is stored
    /// in shards of at most `shard_rows` rows (clamped to at least 1).
    /// Purely a memory-layout knob: contents, queries, and the wire format
    /// are identical for every shard size.
    pub fn with_shard_rows(schema: MetricSchema, shard_rows: usize) -> Self {
        let data = ShardedMatrix::new(schema.len(), shard_rows);
        MetricDatabase {
            schema,
            ids: Vec::new(),
            data,
            observations: Vec::new(),
            job_mixes: Vec::new(),
        }
    }

    /// The configured shard capacity of the data plane (maximum rows per
    /// shard).
    pub fn shard_rows(&self) -> usize {
        self.data.shard_rows()
    }

    /// Number of shards the data plane currently occupies.
    pub fn shard_count(&self) -> usize {
        self.data.shard_count()
    }

    /// The metric schema rows are aligned to.
    pub fn schema(&self) -> &MetricSchema {
        &self.schema
    }

    /// Number of scenarios stored.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` if no scenarios are stored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Row position of `id`, if stored.
    fn position(&self, id: ScenarioId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// Stores a pre-validated record at its sorted position (replacing any
    /// row with the same id).
    fn store(&mut self, record: ScenarioRecord) {
        debug_assert_eq!(record.metrics.len(), self.schema.len());
        match self.ids.binary_search(&record.id) {
            Ok(i) => {
                self.data.row_mut(i).copy_from_slice(&record.metrics);
                self.observations[i] = record.observations;
                self.job_mixes[i] = record.job_mix;
            }
            Err(i) => {
                self.data
                    .insert_row(i, &record.metrics)
                    .expect("length validated against schema");
                self.ids.insert(i, record.id);
                self.observations.insert(i, record.observations);
                self.job_mixes.insert(i, record.job_mix);
            }
        }
    }

    /// Inserts (or replaces) a scenario row. This is the *strict* path:
    /// every metric must be finite. Degraded telemetry goes through
    /// [`MetricDatabase::ingest`] instead, which quarantines bad records
    /// and keeps tolerable ones with missing-sample markers.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::SchemaMismatch`] if the row's metric vector
    /// length differs from the schema,
    /// [`MetricsError::NonFiniteMetric`] if any metric is non-finite, and
    /// [`MetricsError::InvalidParameter`] if `observations == 0`.
    pub fn insert(&mut self, record: ScenarioRecord) -> Result<()> {
        if record.metrics.len() != self.schema.len() {
            return Err(MetricsError::SchemaMismatch {
                expected: self.schema.len(),
                actual: record.metrics.len(),
            });
        }
        if let Some(index) = record.metrics.iter().position(|m| !m.is_finite()) {
            return Err(MetricsError::NonFiniteMetric {
                id: record.id.0,
                index,
            });
        }
        if record.observations == 0 {
            return Err(MetricsError::InvalidParameter(format!(
                "{}: zero observations",
                record.id
            )));
        }
        self.store(record);
        Ok(())
    }

    /// Validating bulk-ingest for telemetry of unknown quality (§4.2's
    /// profiler writes; faulty daemons drop samples, stick, spike, and
    /// duplicate records). Records are checked in order:
    ///
    /// - wrong metric-vector length → quarantined ([`QuarantineReason::SchemaMismatch`]);
    /// - `observations == 0` → quarantined ([`QuarantineReason::ZeroObservations`]);
    /// - scenario id already stored, or seen earlier in this batch →
    ///   quarantined ([`QuarantineReason::Duplicate`]) — duplicated
    ///   telemetry is never silently merged;
    /// - more than `policy.max_missing_fraction` of the metrics non-finite
    ///   → quarantined ([`QuarantineReason::TooManyMissing`]);
    /// - otherwise **accepted**, with every non-finite cell (NaN or ±∞)
    ///   normalized to a NaN missing-sample marker for the Analyzer's
    ///   repair stage to impute.
    ///
    /// Never fails: the outcome of every record is accounted for in the
    /// returned [`IngestReport`].
    pub fn ingest<I>(&mut self, records: I, policy: &IngestPolicy) -> IngestReport
    where
        I: IntoIterator<Item = ScenarioRecord>,
    {
        let mut report = IngestReport::default();
        let allowed =
            (policy.max_missing_fraction.clamp(0.0, 1.0) * self.schema.len() as f64) as usize;
        for mut record in records {
            if record.metrics.len() != self.schema.len() {
                report.quarantined.push((
                    record.id,
                    QuarantineReason::SchemaMismatch {
                        expected: self.schema.len(),
                        actual: record.metrics.len(),
                    },
                ));
                continue;
            }
            if record.observations == 0 {
                report
                    .quarantined
                    .push((record.id, QuarantineReason::ZeroObservations));
                continue;
            }
            if self.position(record.id).is_some() {
                report
                    .quarantined
                    .push((record.id, QuarantineReason::Duplicate));
                continue;
            }
            let missing = record.metrics.iter().filter(|m| !m.is_finite()).count();
            if missing > allowed {
                report.quarantined.push((
                    record.id,
                    QuarantineReason::TooManyMissing { missing, allowed },
                ));
                continue;
            }
            for m in &mut record.metrics {
                if !m.is_finite() {
                    *m = f64::NAN;
                }
            }
            report.accepted += 1;
            report.missing_cells += missing;
            self.store(record);
        }
        report
    }

    /// Number of NaN missing-sample markers across all stored rows (only
    /// the [`MetricDatabase::ingest`] path can introduce them).
    pub fn missing_cells(&self) -> usize {
        self.data
            .shards()
            .iter()
            .flat_map(|s| s.as_slice())
            .filter(|m| !m.is_finite())
            .count()
    }

    /// `true` if any stored row carries a missing-sample marker.
    pub fn has_missing(&self) -> bool {
        self.data
            .shards()
            .iter()
            .flat_map(|s| s.as_slice())
            .any(|m| !m.is_finite())
    }

    /// The row at sorted position `i` as a borrowed view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn row_at(&self, i: usize) -> ScenarioRow<'_> {
        ScenarioRow {
            id: self.ids[i],
            metrics: self.data.row(i),
            observations: self.observations[i],
            job_mix: &self.job_mixes[i],
        }
    }

    /// Looks up a scenario row as a borrowed view.
    pub fn get(&self, id: ScenarioId) -> Option<ScenarioRow<'_>> {
        self.position(id).map(|i| self.row_at(i))
    }

    /// Iterates row views in ascending scenario-id order.
    pub fn iter(&self) -> impl Iterator<Item = ScenarioRow<'_>> {
        (0..self.len()).map(|i| self.row_at(i))
    }

    /// All scenario ids in ascending order, borrowed — no per-call
    /// allocation.
    pub fn scenario_ids(&self) -> &[ScenarioId] {
        &self.ids
    }

    /// Total observation weight across all rows.
    pub fn total_observations(&self) -> u64 {
        self.observations.iter().map(|&o| o as u64).sum()
    }

    /// Pre-sizes the data plane for `additional` rows about to be
    /// appended — one capacity decision per ingest window instead of one
    /// per [`MetricDatabase::insert`]. Purely an allocation hint: the
    /// hint is consumed as shards fill, and contents, shard layout, and
    /// the wire format are unchanged whether or not it was given.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve_rows(additional);
        self.ids.reserve(additional);
        self.observations.reserve(additional);
        self.job_mixes.reserve(additional);
    }

    /// The scenario × metric data matrix, rows in ascending scenario-id
    /// order, **densified**. A borrow of the primary columnar
    /// representation: single-shard databases (everything below
    /// [`MetricDatabase::shard_rows`] rows) hand out their one shard with
    /// zero copies; larger databases coalesce lazily into a cached dense
    /// matrix that stays pointer-stable until the next mutation. Either
    /// way the bytes and row order are identical to an unsharded store.
    ///
    /// This is a **test/oracle seam**: production featurization and
    /// refinement stream shards via [`MetricDatabase::data_shards`] and
    /// never coalesce, so the dense borrow exists for differential tests,
    /// benches, and small ad-hoc consumers. Avoid it on corpora large
    /// enough that an n×d materialization matters.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::EmptyDatabase`] if there are no rows.
    pub fn to_matrix(&self) -> Result<&Matrix> {
        if self.ids.is_empty() {
            return Err(MetricsError::EmptyDatabase);
        }
        Ok(self.data.coalesced())
    }

    /// The sharded data plane itself, for callers that want to walk shards
    /// without coalescing (bounded-memory consumers).
    pub fn data_shards(&self) -> &ShardedMatrix {
        &self.data
    }

    /// Consumes the database, handing out its sharded data plane without
    /// copying — the entry point for moving the shards into an
    /// out-of-core store (e.g. `flare_linalg::ShardStore`) once the
    /// id/observation/job-mix sidecars have been extracted.
    pub fn into_data_shards(self) -> ShardedMatrix {
        self.data
    }

    /// A new database containing the same scenarios but only the metric
    /// columns at `indices` (used after refinement). NaN missing-sample
    /// markers are preserved for the repair stage.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InvalidParameter`] if an index is out of
    /// bounds or `indices` is empty.
    pub fn project(&self, indices: &[usize]) -> Result<MetricDatabase> {
        if indices.is_empty() {
            return Err(MetricsError::InvalidParameter(
                "projection onto zero metrics".into(),
            ));
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.schema.len()) {
            return Err(MetricsError::InvalidParameter(format!(
                "metric index {bad} out of bounds for schema of {}",
                self.schema.len()
            )));
        }
        let schema = self.schema.subset(indices);
        let data = if self.ids.is_empty() {
            ShardedMatrix::new(indices.len(), self.data.shard_rows())
        } else {
            self.data
                .select_columns(indices)
                .expect("indices validated against schema")
        };
        Ok(MetricDatabase {
            schema,
            ids: self.ids.clone(),
            data,
            observations: self.observations.clone(),
            job_mixes: self.job_mixes.clone(),
        })
    }

    /// A new database with the same scenarios and metrics but observation
    /// weights remapped by `weight`; rows whose new weight is zero are
    /// dropped. NaN missing-sample markers are preserved. This is the
    /// stage-graph path for re-weighted reclustering (§5.5): the profile
    /// artifact is reused, only the weights change.
    pub fn reweighted(&self, mut weight: impl FnMut(ScenarioId, u32) -> u32) -> MetricDatabase {
        let mut db = MetricDatabase::with_shard_rows(self.schema.clone(), self.data.shard_rows());
        for i in 0..self.len() {
            let w = weight(self.ids[i], self.observations[i]);
            if w == 0 {
                continue;
            }
            db.data
                .push_row(self.data.row(i))
                .expect("same schema width");
            db.ids.push(self.ids[i]);
            db.observations.push(w);
            db.job_mixes.push(self.job_mixes[i].clone());
        }
        db
    }

    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| MetricsError::Persistence(e.to_string()))
    }

    /// Deserializes a database from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on parse failure.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| MetricsError::Persistence(e.to_string()))
    }

    /// Writes the database to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on I/O or serialization
    /// failure.
    pub fn save(&self, path: &Path) -> Result<()> {
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| MetricsError::Persistence(e.to_string()))
    }

    /// Reads a database from a JSON file.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::Persistence`] on I/O or parse failure.
    pub fn load(path: &Path) -> Result<Self> {
        let json =
            std::fs::read_to_string(path).map_err(|e| MetricsError::Persistence(e.to_string()))?;
        Self::from_json(&json)
    }
}

/// The JSON wire format: identical to the pre-columnar row-oriented
/// representation (`{schema, records: {id: record}}`), so databases saved
/// before the columnar refactor load unchanged and new files remain
/// readable by old tooling. [`MetricDatabase`] converts through this type
/// at the serde boundary (`into`/`try_from` container attributes).
///
/// A database configured with a non-default shard size additionally
/// writes a `shard_rows` key so checkpoints resume with the same layout;
/// at the default the key is omitted and the legacy shape is preserved
/// exactly. Old tooling that ignores unknown keys is unaffected either
/// way — shard size never changes contents.
#[derive(Clone, Serialize, Deserialize)]
pub struct DbWire {
    schema: MetricSchema,
    records: BTreeMap<ScenarioId, ScenarioRecord>,
    #[serde(
        default = "default_shard_rows",
        skip_serializing_if = "is_default_shard_rows"
    )]
    shard_rows: usize,
}

fn default_shard_rows() -> usize {
    DEFAULT_SHARD_ROWS
}

#[allow(clippy::trivially_copy_pass_by_ref)] // serde's skip_serializing_if signature
fn is_default_shard_rows(v: &usize) -> bool {
    *v == DEFAULT_SHARD_ROWS
}

impl From<MetricDatabase> for DbWire {
    fn from(db: MetricDatabase) -> DbWire {
        DbWire {
            records: db.iter().map(|r| (r.id, r.to_record())).collect(),
            shard_rows: db.data.shard_rows(),
            schema: db.schema,
        }
    }
}

impl TryFrom<DbWire> for MetricDatabase {
    type Error = MetricsError;

    fn try_from(wire: DbWire) -> Result<MetricDatabase> {
        let mut db = MetricDatabase::with_shard_rows(wire.schema, wire.shard_rows);
        for (id, record) in wire.records {
            if record.id != id {
                return Err(MetricsError::Persistence(format!(
                    "record keyed {id} carries id {}",
                    record.id
                )));
            }
            if record.metrics.len() != db.schema.len() {
                return Err(MetricsError::SchemaMismatch {
                    expected: db.schema.len(),
                    actual: record.metrics.len(),
                });
            }
            db.store(record);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::MetricSchema;

    fn tiny_schema() -> MetricSchema {
        MetricSchema::canonical().subset(&[0, 1, 2])
    }

    fn record(id: u32, base: f64) -> ScenarioRecord {
        ScenarioRecord {
            id: ScenarioId(id),
            metrics: vec![base, base + 1.0, base + 2.0],
            observations: 1 + id,
            job_mix: vec![("DC".into(), 2), ("GA".into(), 1)],
        }
    }

    #[test]
    fn insert_and_get() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(7, 1.0)).unwrap();
        assert_eq!(db.len(), 1);
        let r = db.get(ScenarioId(7)).unwrap();
        assert_eq!(r.metrics[2], 3.0);
        assert!(db.get(ScenarioId(8)).is_none());
    }

    #[test]
    fn insert_validates() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut bad = record(0, 1.0);
        bad.metrics.pop();
        assert!(matches!(
            db.insert(bad),
            Err(MetricsError::SchemaMismatch {
                expected: 3,
                actual: 2
            })
        ));
        let mut nan = record(0, 1.0);
        nan.metrics[0] = f64::NAN;
        assert!(db.insert(nan).is_err());
        let mut zero_obs = record(0, 1.0);
        zero_obs.observations = 0;
        assert!(db.insert(zero_obs).is_err());
    }

    #[test]
    fn replace_on_same_id() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(1, 1.0)).unwrap();
        db.insert(record(1, 5.0)).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(ScenarioId(1)).unwrap().metrics[0], 5.0);
    }

    #[test]
    fn matrix_rows_follow_id_order() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(5, 50.0)).unwrap();
        db.insert(record(2, 20.0)).unwrap();
        let m = db.to_matrix().unwrap();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 20.0); // id 2 first
        assert_eq!(m[(1, 0)], 50.0);
    }

    #[test]
    fn matrix_is_a_borrow_of_the_columnar_store() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap();
        let before = db.to_matrix().unwrap() as *const Matrix;
        let again = db.to_matrix().unwrap() as *const Matrix;
        // Same backing allocation both times: a borrow, not a copy.
        assert_eq!(before, again);
    }

    #[test]
    fn scenario_ids_borrow_sorted() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(9, 1.0)).unwrap();
        db.insert(record(3, 1.0)).unwrap();
        db.insert(record(6, 1.0)).unwrap();
        assert_eq!(
            db.scenario_ids(),
            &[ScenarioId(3), ScenarioId(6), ScenarioId(9)]
        );
        let views: Vec<u32> = db.iter().map(|r| r.id.0).collect();
        assert_eq!(views, vec![3, 6, 9]);
    }

    #[test]
    fn empty_matrix_errors() {
        let db = MetricDatabase::new(tiny_schema());
        assert!(matches!(db.to_matrix(), Err(MetricsError::EmptyDatabase)));
    }

    #[test]
    fn projection_keeps_rows_and_narrows_schema() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap();
        db.insert(record(1, 4.0)).unwrap();
        let p = db.project(&[2, 0]).unwrap();
        assert_eq!(p.schema().len(), 2);
        assert_eq!(p.get(ScenarioId(0)).unwrap().metrics, &[3.0, 1.0]);
        assert!(db.project(&[]).is_err());
        assert!(db.project(&[9]).is_err());
    }

    #[test]
    fn job_mix_queries() {
        let r = record(0, 1.0);
        assert_eq!(r.instances_of("DC"), 2);
        assert_eq!(r.instances_of("WSV"), 0);
        assert!(r.has_job("GA"));
        assert!(!r.has_job("WSV"));
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(r).unwrap();
        let view = db.get(ScenarioId(0)).unwrap();
        assert_eq!(view.instances_of("DC"), 2);
        assert!(view.has_job("GA"));
        assert!(!view.has_job("WSV"));
    }

    #[test]
    fn row_view_roundtrips_to_record() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(4, 2.0)).unwrap();
        assert_eq!(db.get(ScenarioId(4)).unwrap().to_record(), record(4, 2.0));
    }

    #[test]
    fn reweighted_drops_zero_weight_rows() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap();
        db.insert(record(1, 2.0)).unwrap();
        db.insert(record(2, 3.0)).unwrap();
        let rw = db.reweighted(|id, obs| if id.0 == 1 { 0 } else { obs * 10 });
        assert_eq!(rw.len(), 2);
        assert!(rw.get(ScenarioId(1)).is_none());
        assert_eq!(rw.get(ScenarioId(0)).unwrap().observations, 10);
        assert_eq!(
            rw.get(ScenarioId(2)).unwrap().metrics,
            db.get(ScenarioId(2)).unwrap().metrics
        );
    }

    #[test]
    fn observations_accumulate() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap(); // 1 obs
        db.insert(record(1, 1.0)).unwrap(); // 2 obs
        assert_eq!(db.total_observations(), 3);
    }

    #[test]
    fn json_roundtrip() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 1.0)).unwrap();
        db.insert(record(3, 9.0)).unwrap();
        let json = db.to_json().unwrap();
        let back = MetricDatabase::from_json(&json).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn wire_format_is_the_legacy_row_oriented_shape() {
        // Files written by the pre-columnar database (schema + records
        // map) must keep loading, and new files must keep that shape.
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(2, 1.0)).unwrap();
        let v: serde_json::Value = serde_json::from_str(&db.to_json().unwrap()).unwrap();
        assert!(v.get("schema").is_some());
        let records = v.get("records").expect("records map");
        assert!(records
            .get("2")
            .expect("keyed by id")
            .get("metrics")
            .is_some());
    }

    #[test]
    fn malformed_wire_records_are_rejected() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(2, 1.0)).unwrap();
        let mut v: serde_json::Value = serde_json::from_str(&db.to_json().unwrap()).unwrap();
        v["records"]["2"]["metrics"] = serde_json::json!([1.0]); // wrong arity
        assert!(MetricDatabase::from_json(&v.to_string()).is_err());
        let mut v2: serde_json::Value = serde_json::from_str(&db.to_json().unwrap()).unwrap();
        v2["records"]["2"]["id"] = serde_json::json!(7); // key/id disagreement
        assert!(MetricDatabase::from_json(&v2.to_string()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(0, 2.0)).unwrap();
        let dir = std::env::temp_dir().join("flare_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.json");
        db.save(&path).unwrap();
        let back = MetricDatabase::load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn scenario_display() {
        assert_eq!(ScenarioId(7).to_string(), "scenario#0007");
    }

    #[test]
    fn ingest_accepts_clean_batch() {
        let mut db = MetricDatabase::new(tiny_schema());
        let report = db.ingest(
            vec![record(0, 1.0), record(1, 2.0)],
            &IngestPolicy::default(),
        );
        assert_eq!(report.accepted, 2);
        assert!(report.is_clean());
        assert_eq!(db.len(), 2);
        assert!(!db.has_missing());
    }

    #[test]
    fn ingest_keeps_tolerably_degraded_records_with_markers() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut r = record(0, 1.0);
        r.metrics[1] = f64::INFINITY; // 1 of 3 missing ≤ default 50%
        let report = db.ingest(vec![r], &IngestPolicy::default());
        assert_eq!(report.accepted, 1);
        assert_eq!(report.missing_cells, 1);
        assert!(report.quarantined.is_empty());
        // ±∞ is normalized to the NaN missing marker.
        assert!(db.get(ScenarioId(0)).unwrap().metrics[1].is_nan());
        assert_eq!(db.missing_cells(), 1);
        assert!(db.has_missing());
    }

    #[test]
    fn ingest_quarantines_hopeless_records() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(3, 1.0)).unwrap();
        let mut short = record(0, 1.0);
        short.metrics.pop();
        let mut zero_obs = record(1, 1.0);
        zero_obs.observations = 0;
        let mut all_nan = record(2, 1.0);
        all_nan.metrics = vec![f64::NAN; 3];
        let dup_existing = record(3, 9.0);
        let batch = vec![
            short,
            zero_obs,
            all_nan,
            dup_existing,
            record(4, 5.0),
            record(4, 6.0), // duplicate within the batch
        ];
        let report = db.ingest(batch, &IngestPolicy::default());
        assert_eq!(report.accepted, 1);
        assert_eq!(report.quarantined_count(), 5);
        assert_eq!(
            report.quarantined[0].1,
            QuarantineReason::SchemaMismatch {
                expected: 3,
                actual: 2
            }
        );
        assert_eq!(report.quarantined[1].1, QuarantineReason::ZeroObservations);
        assert!(matches!(
            report.quarantined[2].1,
            QuarantineReason::TooManyMissing { missing: 3, .. }
        ));
        assert_eq!(report.quarantined[3].1, QuarantineReason::Duplicate);
        assert_eq!(report.quarantined[4].1, QuarantineReason::Duplicate);
        // The pre-existing record is untouched by the duplicate.
        assert_eq!(db.get(ScenarioId(3)).unwrap().metrics[0], 1.0);
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn quarantine_reasons_escalate_to_typed_errors() {
        let id = ScenarioId(9);
        assert!(matches!(
            QuarantineReason::Duplicate.to_error(id),
            MetricsError::DuplicateScenario(9)
        ));
        assert!(matches!(
            QuarantineReason::SchemaMismatch {
                expected: 3,
                actual: 1
            }
            .to_error(id),
            MetricsError::SchemaMismatch { .. }
        ));
    }

    #[test]
    fn strict_insert_reports_offending_index() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut nan = record(0, 1.0);
        nan.metrics[2] = f64::NAN;
        assert!(matches!(
            db.insert(nan),
            Err(MetricsError::NonFiniteMetric { id: 0, index: 2 })
        ));
    }

    #[test]
    fn sharded_database_matches_unsharded_queries() {
        let mut tiny = MetricDatabase::with_shard_rows(tiny_schema(), 2);
        let mut dflt = MetricDatabase::new(tiny_schema());
        for id in [9, 1, 5, 3, 7, 2, 8, 0, 6, 4] {
            tiny.insert(record(id, id as f64)).unwrap();
            dflt.insert(record(id, id as f64)).unwrap();
        }
        assert!(tiny.shard_count() > 1);
        assert_eq!(dflt.shard_count(), 1);
        // Layout never leaks into contents: equality, row views, and the
        // dense matrix are identical.
        assert_eq!(tiny, dflt);
        for i in 0..tiny.len() {
            assert_eq!(tiny.row_at(i).to_record(), dflt.row_at(i).to_record());
        }
        assert_eq!(
            tiny.to_matrix().unwrap().as_slice(),
            dflt.to_matrix().unwrap().as_slice()
        );
        let pt = tiny.project(&[2, 0]).unwrap();
        let pd = dflt.project(&[2, 0]).unwrap();
        assert_eq!(pt, pd);
        assert_eq!(pt.shard_rows(), 2); // projection preserves the layout knob
    }

    #[test]
    fn multi_shard_matrix_borrow_is_pointer_stable() {
        let mut db = MetricDatabase::with_shard_rows(tiny_schema(), 2);
        for id in 0..7 {
            db.insert(record(id, id as f64)).unwrap();
        }
        let before = db.to_matrix().unwrap() as *const Matrix;
        let again = db.to_matrix().unwrap() as *const Matrix;
        assert_eq!(before, again);
    }

    #[test]
    fn wire_format_omits_shard_rows_at_default_and_roundtrips_custom() {
        let mut dflt = MetricDatabase::new(tiny_schema());
        dflt.insert(record(1, 1.0)).unwrap();
        let v: serde_json::Value = serde_json::from_str(&dflt.to_json().unwrap()).unwrap();
        // Legacy shape exactly: no shard_rows key at the default.
        assert!(v.get("shard_rows").is_none());

        let mut custom = MetricDatabase::with_shard_rows(tiny_schema(), 3);
        custom.insert(record(1, 1.0)).unwrap();
        let json = custom.to_json().unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("shard_rows").and_then(|s| s.as_u64()), Some(3));
        let back = MetricDatabase::from_json(&json).unwrap();
        assert_eq!(back, custom);
        assert_eq!(back.shard_rows(), 3);
    }

    #[test]
    fn legacy_json_without_shard_rows_loads_with_default() {
        let mut db = MetricDatabase::new(tiny_schema());
        db.insert(record(2, 1.0)).unwrap();
        let json = db.to_json().unwrap();
        assert!(!json.contains("shard_rows"));
        let back = MetricDatabase::from_json(&json).unwrap();
        assert_eq!(back.shard_rows(), DEFAULT_SHARD_ROWS);
        assert_eq!(back, db);
    }

    #[test]
    fn projection_preserves_missing_markers() {
        let mut db = MetricDatabase::new(tiny_schema());
        let mut r = record(0, 1.0);
        r.metrics[0] = f64::NAN;
        db.ingest(vec![r], &IngestPolicy::default());
        let p = db.project(&[0, 2]).unwrap();
        assert!(p.get(ScenarioId(0)).unwrap().metrics[0].is_nan());
        assert_eq!(p.get(ScenarioId(0)).unwrap().metrics[1], 3.0);
    }
}
